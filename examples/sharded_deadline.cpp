// Sharded EcoFusion under an energy budget AND a frame deadline.
//
//   1. compose a mixed-scenario stream: all 8 RADIATE contexts interleaved,
//      two severity-jittered sequences per scene;
//   2. run it through a ShardedPipeline: 2 engine shards over one shared
//      4-worker pool, Loss-Based gating, and per-shard closed loops — a
//      joules-per-frame budget floating λ_E and a modeled-ms-per-frame
//      deadline floating λ_L, deadline-priority when they collide;
//   3. print each shard's λ trajectories and the merged per-scene table
//      (restored to global stream order, bitwise equal to an unsharded run
//      when the loops are disabled).
//
// Build & run:  ./build/examples/sharded_deadline
#include <cstdio>
#include <memory>

#include "gating/loss_gate.hpp"
#include "runtime/shard.hpp"
#include "util/table.hpp"

int main() {
  using namespace eco;

  // 1. The stream: 8 lanes x 2 sequences x 12 frames = 192 frames.
  runtime::StreamConfig stream_config;
  stream_config.sequence.length = 12;
  stream_config.sequences_per_scene = 2;
  stream_config.seed = 2022;

  // 2. The sharded pipeline: hold 1.9 J/frame and a 40 ms/frame deadline,
  //    per shard, with the deadline taking priority.
  runtime::BudgetConfig budget;
  budget.target_j_per_frame = 1.9;
  budget.initial_lambda = 0.0f;
  budget.gain = 0.5f;
  budget.max_step = 0.25f;

  runtime::DeadlineConfig deadline;
  deadline.target_ms_per_frame = 40.0;
  deadline.initial_lambda = 0.0f;
  deadline.gain = 0.5f;
  deadline.max_step = 0.25f;

  runtime::ShardedConfig config;
  config.shards = 2;
  config.pipeline.workers = 4;
  config.pipeline.window = 16;
  config.pipeline.joint.gamma = 2.0f;
  config.pipeline.budget = budget;
  config.pipeline.deadline = deadline;
  config.pipeline.priority = runtime::ControlPriority::kDeadlineFirst;

  runtime::ShardedPipeline pipeline(config);
  const runtime::ShardGateFactory gate_factory =
      [](const core::EcoFusionEngine& engine) {
        return std::make_unique<gating::LossBasedGate>(
            engine.config_space().size());
      };
  const runtime::ShardedReport report =
      pipeline.run(stream_config, gate_factory);
  const runtime::PipelineReport& merged = report.merged;

  std::printf("Processed %zu frames on %zu shards x shared %zu-worker pool "
              "in %.2f s (%.1f frames/s)\n",
              merged.frames, config.shards, config.pipeline.workers,
              merged.wall_seconds, merged.frames_per_second);
  {
    // The oracle gate's fixed deadline share, from the gate cost hook.
    const gating::LossBasedGate probe(
        pipeline.engine(0).config_space().size());
    std::printf("Targets (per shard): %.1f J/frame, %.1f ms/frame "
                "(gate's modeled share: %.2f ms)\n",
                budget.target_j_per_frame, deadline.target_ms_per_frame,
                probe.modeled_cost_ms(pipeline.engine(0).hardware()));
  }
  std::printf("Achieved overall: %.3f J/frame, %.2f model ms/frame\n\n",
              merged.mean_energy_j, merged.mean_latency_ms);

  for (const runtime::ShardSlice& shard : report.shards) {
    std::printf("shard %zu (%zu frames): final lambda_E %.3f, "
                "final lambda_L %.3f\n",
                shard.shard_index, shard.frames, shard.final_lambda,
                shard.final_lambda_latency);
    std::printf("  lambda_E per window:");
    for (float lambda : shard.lambda_trace) std::printf(" %.2f", lambda);
    std::printf("\n  lambda_L per window:");
    for (float lambda : shard.deadline_trace) std::printf(" %.2f", lambda);
    std::printf("\n");
  }
  std::printf("\n");

  // 3. Merged per-scene breakdown (global stream order).
  util::Table table({"Scene", "Frames", "mAP (%)", "Mean loss", "J/frame",
                     "Model ms/frame"});
  for (const runtime::SceneReport& scene : merged.per_scene) {
    table.add_row({dataset::scene_type_name(scene.scene),
                   std::to_string(scene.frames), util::fmt_pct(scene.map),
                   util::fmt(scene.mean_loss), util::fmt(scene.mean_energy_j),
                   util::fmt(scene.mean_latency_ms, 2)});
  }
  table.add_separator();
  table.add_row({"overall", std::to_string(merged.frames),
                 util::fmt_pct(merged.map), util::fmt(merged.mean_loss),
                 util::fmt(merged.mean_energy_j),
                 util::fmt(merged.mean_latency_ms, 2)});
  std::printf("%s", table.render().c_str());
  return 0;
}
