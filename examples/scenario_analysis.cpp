// Scenario analysis: the paper's §1 contribution (4) — "an in-depth
// analysis of the performance of each sensing modality in a range of
// difficult driving contexts".
//
// For every scene type, evaluates each single-sensor configuration plus the
// early/late baselines on the test split and prints per-scene loss, showing
// which modality to trust where (the knowledge a KnowledgeGate encodes).
#include <cstdio>

#include "core/engine.hpp"
#include "dataset/generator.hpp"
#include "eval/metrics.hpp"
#include "util/table.hpp"

int main() {
  using namespace eco;

  dataset::DatasetConfig data_config;
  data_config.frames_per_scene = 16;
  const dataset::Dataset data(data_config);
  const core::EcoFusionEngine engine;
  const auto& b = engine.baselines();

  util::Table table({"Scene", "CL", "CR", "Lidar", "Radar", "Early", "Late"});
  const std::size_t configs[] = {b.camera_left, b.camera_right, b.lidar,
                                 b.radar, b.early, b.late};

  for (dataset::SceneType scene : dataset::all_scene_types()) {
    const auto frames = data.test_indices_for_scene(scene);
    std::vector<std::string> row = {dataset::scene_type_name(scene)};
    double best = 1e30;
    std::size_t best_col = 0, col = 0;
    std::vector<double> losses;
    for (std::size_t config_index : configs) {
      eval::RunningStats stats;
      for (std::size_t i : frames) {
        stats.add(engine.run_static(data.frame(i), config_index).loss.total());
      }
      losses.push_back(stats.mean());
      if (stats.mean() < best) {
        best = stats.mean();
        best_col = col;
      }
      ++col;
    }
    for (std::size_t c = 0; c < losses.size(); ++c) {
      std::string cell = util::fmt(losses[c], 2);
      if (c == best_col) cell += " *";
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }

  std::printf("Per-scene average detection loss by modality "
              "(* = best in scene)\n\n%s\n", table.render().c_str());
  std::printf("Reading guide: cameras lead in clear daylight, lidar/radar in "
              "fog and snow,\nlate fusion is never far from the best — this "
              "heterogeneity is what EcoFusion's\ncontext gating exploits.\n");
  return 0;
}
