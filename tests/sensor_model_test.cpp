#include "dataset/sensor_model.hpp"

#include <gtest/gtest.h>

#include "dataset/generator.hpp"

namespace eco::dataset {
namespace {

TEST(RenderBackendTest, FastMatchesReferenceBitwise) {
  // The fast render (row-pointer walks, hoisted blob tables, batched noise
  // fills) must be bitwise identical to the reference per-cell render for
  // every sensor kind — same contract the tensor kernels pin with
  // ECO_REFERENCE_KERNELS.
  const SensorGridSpec spec;
  RenderScratch scratch;
  for (SceneType scene : {SceneType::kCity, SceneType::kFog}) {
    const SceneEnvironment env = scene_environment(scene);
    util::Rng obj_rng(13);
    const auto objects = generate_objects(env, spec, obj_rng);
    util::Rng phantom_rng(14);
    const auto phantoms = generate_phantoms(env, spec, phantom_rng);
    for (SensorKind kind : all_sensor_kinds()) {
      util::Rng fast_rng(404), ref_rng(404);
      const auto fast = render_sensor_fast(kind, env, objects, phantoms,
                                           spec, fast_rng, scratch);
      const auto ref = render_sensor_reference(kind, env, objects, phantoms,
                                               spec, ref_rng);
      EXPECT_TRUE(fast.equals(ref))
          << scene_type_name(scene) << "/" << sensor_kind_name(kind);
      // Both paths must leave the rng in the same state too, or sequential
      // callers downstream of a render would diverge between backends.
      EXPECT_EQ(fast_rng.next_u64(), ref_rng.next_u64());
    }
  }
}

TEST(SensorQualityTest, CamerasCollapseInFogAndSnow) {
  for (SensorKind cam : {SensorKind::kCameraLeft, SensorKind::kCameraRight}) {
    EXPECT_LT(sensor_quality(cam, SceneType::kFog),
              0.5f * sensor_quality(cam, SceneType::kCity));
    EXPECT_LT(sensor_quality(cam, SceneType::kSnow),
              0.5f * sensor_quality(cam, SceneType::kCity));
  }
}

TEST(SensorQualityTest, RadarIsWeatherInvariant) {
  const float city = sensor_quality(SensorKind::kRadar, SceneType::kCity);
  for (SceneType scene : all_scene_types()) {
    EXPECT_NEAR(sensor_quality(SensorKind::kRadar, scene), city, 0.06f)
        << scene_type_name(scene);
  }
}

TEST(SensorQualityTest, LidarBeatsCamerasInFog) {
  EXPECT_GT(sensor_quality(SensorKind::kLidar, SceneType::kFog),
            sensor_quality(SensorKind::kCameraRight, SceneType::kFog));
  EXPECT_GT(sensor_quality(SensorKind::kLidar, SceneType::kSnow),
            sensor_quality(SensorKind::kCameraRight, SceneType::kSnow));
}

TEST(SensorQualityTest, RightCameraBeatsLeftEverywhere) {
  for (SceneType scene : all_scene_types()) {
    EXPECT_GE(sensor_quality(SensorKind::kCameraRight, scene),
              sensor_quality(SensorKind::kCameraLeft, scene));
  }
}

TEST(SensorQualityTest, CamerasBestInClearDaylight) {
  for (SceneType scene : {SceneType::kCity, SceneType::kJunction,
                          SceneType::kMotorway, SceneType::kRural}) {
    EXPECT_GT(sensor_quality(SensorKind::kCameraRight, scene),
              sensor_quality(SensorKind::kLidar, scene));
    EXPECT_GT(sensor_quality(SensorKind::kCameraRight, scene),
              sensor_quality(SensorKind::kRadar, scene));
  }
}

TEST(MissProbabilityTest, BoundedAndMonotoneInQuality) {
  for (SensorKind kind : all_sensor_kinds()) {
    for (SceneType scene : all_scene_types()) {
      for (detect::ObjectClass cls : detect::all_object_classes()) {
        const float m = sensor_miss_probability(kind, scene, cls);
        EXPECT_GE(m, 0.0f);
        EXPECT_LE(m, 0.95f);
      }
    }
  }
  // Camera misses more in fog than in the city, for every class.
  for (detect::ObjectClass cls : detect::all_object_classes()) {
    EXPECT_GT(sensor_miss_probability(SensorKind::kCameraRight,
                                      SceneType::kFog, cls),
              sensor_miss_probability(SensorKind::kCameraRight,
                                      SceneType::kCity, cls));
  }
}

TEST(ClassSignatureTest, ModalitySpecificChannels) {
  const detect::ObjectClass bus = detect::ObjectClass::kBus;
  EXPECT_EQ(class_signature(SensorKind::kCameraLeft, bus),
            class_priors(bus).camera_intensity);
  EXPECT_EQ(class_signature(SensorKind::kLidar, bus),
            class_priors(bus).lidar_reflectivity);
  EXPECT_EQ(class_signature(SensorKind::kRadar, bus),
            class_priors(bus).radar_rcs);
}

TEST(PhantomTest, RateScalesWithWeather) {
  const SensorGridSpec spec;
  util::Rng rng(5);
  int clear_total = 0, fog_total = 0;
  for (int i = 0; i < 200; ++i) {
    clear_total += static_cast<int>(
        generate_phantoms(scene_environment(SceneType::kMotorway), spec, rng)
            .size());
    fog_total += static_cast<int>(
        generate_phantoms(scene_environment(SceneType::kFog), spec, rng)
            .size());
  }
  EXPECT_LT(clear_total, fog_total / 4);
}

TEST(PhantomTest, BoxesInsideGrid) {
  const SensorGridSpec spec;
  util::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    for (const Phantom& ph :
         generate_phantoms(scene_environment(SceneType::kSnow), spec, rng)) {
      EXPECT_GE(ph.box.x1, 0.0f);
      EXPECT_GE(ph.box.y1, 0.0f);
      EXPECT_LE(ph.box.x2, static_cast<float>(spec.width));
      EXPECT_LE(ph.box.y2, static_cast<float>(spec.height));
      EXPECT_GT(ph.strength, 0.0f);
    }
  }
}

TEST(PhantomTest, RadarLeastSusceptible) {
  for (SceneType scene : {SceneType::kFog, SceneType::kRain, SceneType::kSnow}) {
    const SceneEnvironment env = scene_environment(scene);
    EXPECT_LT(phantom_susceptibility(SensorKind::kRadar, env),
              phantom_susceptibility(SensorKind::kCameraRight, env));
    EXPECT_LT(phantom_susceptibility(SensorKind::kRadar, env),
              phantom_susceptibility(SensorKind::kLidar, env));
  }
}

class RenderSweep : public ::testing::TestWithParam<SceneType> {};

TEST_P(RenderSweep, RenderIsDeterministicAndInRange) {
  const SceneType scene = GetParam();
  const SceneEnvironment env = scene_environment(scene);
  const SensorGridSpec spec;
  util::Rng obj_rng(11);
  const auto objects = generate_objects(env, spec, obj_rng);
  const auto phantoms = generate_phantoms(env, spec, obj_rng);
  for (SensorKind kind : all_sensor_kinds()) {
    util::Rng r1(77), r2(77);
    const auto g1 = render_sensor(kind, env, objects, phantoms, spec, r1);
    const auto g2 = render_sensor(kind, env, objects, phantoms, spec, r2);
    EXPECT_TRUE(g1.equals(g2)) << sensor_kind_name(kind);
    EXPECT_EQ(g1.shape(), (tensor::Shape{1, spec.height, spec.width}));
    EXPECT_GE(g1.min(), 0.0f);
    EXPECT_LT(g1.max(), 2.5f);
  }
}

TEST_P(RenderSweep, ObjectsRaiseSignalAboveEmptyScene) {
  const SceneType scene = GetParam();
  const SceneEnvironment env = scene_environment(scene);
  const SensorGridSpec spec;
  util::Rng obj_rng(13);
  const auto objects = generate_objects(env, spec, obj_rng);
  ASSERT_FALSE(objects.empty());
  // Object draws consume RNG state, so with/without see different noise
  // realizations; average a few seeds so weak-signal scenes (snow lidar)
  // don't hinge on one realization.
  double with_total = 0.0;
  double without_total = 0.0;
  for (std::uint64_t seed = 99; seed < 103; ++seed) {
    util::Rng r1(seed), r2(seed);
    with_total +=
        render_sensor(SensorKind::kLidar, env, objects, {}, spec, r1).sum();
    without_total +=
        render_sensor(SensorKind::kLidar, env, {}, {}, spec, r2).sum();
  }
  EXPECT_GT(with_total, without_total);
}

INSTANTIATE_TEST_SUITE_P(AllScenes, RenderSweep,
                         ::testing::ValuesIn(all_scene_types()),
                         [](const auto& info) {
                           return scene_type_name(info.param);
                         });

}  // namespace
}  // namespace eco::dataset
