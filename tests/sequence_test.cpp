#include "dataset/sequence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>

namespace eco::dataset {
namespace {

SequenceConfig test_config() {
  SequenceConfig config;
  config.length = 10;
  config.seed = 5;
  return config;
}

TEST(SequenceTest, ProducesRequestedLength) {
  const Sequence seq = generate_sequence(SceneType::kCity, test_config(), 0);
  EXPECT_EQ(seq.frames.size(), 10u);
  EXPECT_EQ(seq.tracks.size(), 10u);
  EXPECT_EQ(seq.scene, SceneType::kCity);
}

TEST(SequenceTest, Deterministic) {
  const Sequence a = generate_sequence(SceneType::kRain, test_config(), 3);
  const Sequence b = generate_sequence(SceneType::kRain, test_config(), 3);
  ASSERT_EQ(a.frames.size(), b.frames.size());
  for (std::size_t t = 0; t < a.frames.size(); ++t) {
    EXPECT_TRUE(a.frames[t]
                    .grid(SensorKind::kLidar)
                    .equals(b.frames[t].grid(SensorKind::kLidar)));
  }
}

TEST(SequenceTest, ObjectCountIsStable) {
  const Sequence seq = generate_sequence(SceneType::kMotorway, test_config(), 1);
  const std::size_t initial = seq.frames.front().objects.size();
  for (const Frame& frame : seq.frames) {
    EXPECT_EQ(frame.objects.size(), initial);
  }
}

TEST(SequenceTest, ObjectsActuallyMove) {
  const Sequence seq = generate_sequence(SceneType::kMotorway, test_config(), 2);
  ASSERT_GE(seq.frames.size(), 2u);
  double total_displacement = 0.0;
  const auto& first = seq.tracks.front();
  const auto& last = seq.tracks.back();
  ASSERT_EQ(first.size(), last.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    total_displacement += std::abs(last[i].x - first[i].x) +
                          std::abs(last[i].y - first[i].y);
  }
  EXPECT_GT(total_displacement, 1.0);
}

TEST(SequenceTest, BoxesStayCellAlignedAndInBounds) {
  const SequenceConfig config = test_config();
  const Sequence seq = generate_sequence(SceneType::kJunction, config, 4);
  for (const Frame& frame : seq.frames) {
    for (const auto& gt : frame.objects) {
      EXPECT_EQ(gt.box.x1, std::floor(gt.box.x1));
      EXPECT_EQ(gt.box.y1, std::floor(gt.box.y1));
      EXPECT_GE(gt.box.x1, 0.0f);
      EXPECT_LE(gt.box.x2, static_cast<float>(config.grid.width));
      EXPECT_LE(gt.box.y2, static_cast<float>(config.grid.height));
      EXPECT_TRUE(gt.box.valid());
    }
  }
}

TEST(SequenceTest, ObjectsNeverTouch) {
  const Sequence seq = generate_sequence(SceneType::kCity, test_config(), 6);
  for (const Frame& frame : seq.frames) {
    for (std::size_t i = 0; i < frame.objects.size(); ++i) {
      for (std::size_t j = i + 1; j < frame.objects.size(); ++j) {
        EXPECT_EQ(detect::intersection_area(frame.objects[i].box,
                                            frame.objects[j].box),
                  0.0f);
      }
    }
  }
}

TEST(SequenceTest, MotionIsSmooth) {
  // Frame-to-frame displacement is bounded by the configured speed (+1 for
  // cell rounding).
  const SequenceConfig config = test_config();
  const Sequence seq = generate_sequence(SceneType::kMotorway, config, 7);
  for (std::size_t t = 1; t < seq.tracks.size(); ++t) {
    ASSERT_EQ(seq.tracks[t].size(), seq.tracks[t - 1].size());
    for (std::size_t i = 0; i < seq.tracks[t].size(); ++i) {
      const float dx = seq.tracks[t][i].x - seq.tracks[t - 1][i].x;
      const float dy = seq.tracks[t][i].y - seq.tracks[t - 1][i].y;
      EXPECT_LE(std::hypot(dx, dy), config.vehicle_speed + 1.0f);
    }
  }
}

TEST(SequenceTest, ClassesArePersistent) {
  const Sequence seq = generate_sequence(SceneType::kRural, test_config(), 8);
  const auto& first = seq.frames.front().objects;
  for (const Frame& frame : seq.frames) {
    ASSERT_EQ(frame.objects.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(frame.objects[i].cls, first[i].cls);
    }
  }
}

TEST(SequencePlanTest, PlanMatchesSequenceSnapshots) {
  const SequenceConfig config = test_config();
  const Sequence seq = generate_sequence(SceneType::kFog, config, 11);
  const SequencePlan plan = plan_sequence(SceneType::kFog, config, 11);
  ASSERT_EQ(plan.frames.size(), seq.frames.size());
  ASSERT_EQ(plan.tracks.size(), seq.tracks.size());
  for (std::size_t t = 0; t < plan.frames.size(); ++t) {
    EXPECT_EQ(plan.frames[t].frame_id, seq.frames[t].id);
    ASSERT_EQ(plan.frames[t].objects.size(), seq.frames[t].objects.size());
    for (std::size_t i = 0; i < plan.frames[t].objects.size(); ++i) {
      EXPECT_EQ(plan.frames[t].objects[i].box.x1,
                seq.frames[t].objects[i].box.x1);
      EXPECT_EQ(plan.frames[t].objects[i].cls, seq.frames[t].objects[i].cls);
    }
  }
}

TEST(SequencePlanTest, FramesRenderBitwiseIdenticalInAnyOrder) {
  // The detachment contract: per-(frame, sensor) rng seeds are captured at
  // snapshot time, so rendering order (and thread) cannot matter. Render a
  // shuffled permutation and require bitwise equality with the sequential
  // in-order path.
  const SequenceConfig config = test_config();
  for (SceneType scene : {SceneType::kCity, SceneType::kSnow}) {
    const Sequence sequential = generate_sequence(scene, config, 21);
    const SequencePlan plan = plan_sequence(scene, config, 21);
    ASSERT_EQ(plan.frames.size(), sequential.frames.size());

    std::vector<std::size_t> order(plan.frames.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::mt19937_64 shuffler(20260808);
    std::shuffle(order.begin(), order.end(), shuffler);

    std::vector<Frame> rendered(plan.frames.size());
    for (std::size_t t : order) {
      rendered[t] = render_planned_frame(plan, t);
    }
    for (std::size_t t = 0; t < rendered.size(); ++t) {
      EXPECT_EQ(rendered[t].id, sequential.frames[t].id);
      for (SensorKind kind : all_sensor_kinds()) {
        EXPECT_TRUE(rendered[t].grid(kind).equals(
            sequential.frames[t].grid(kind)))
            << scene_type_name(scene) << " frame " << t << " sensor "
            << sensor_kind_name(kind);
      }
    }
  }
}

class SequenceSceneSweep : public ::testing::TestWithParam<SceneType> {};

TEST_P(SequenceSceneSweep, RendersAllSensorsEveryFrame) {
  SequenceConfig config = test_config();
  config.length = 4;
  const Sequence seq = generate_sequence(GetParam(), config, 9);
  for (const Frame& frame : seq.frames) {
    for (SensorKind kind : all_sensor_kinds()) {
      EXPECT_EQ(frame.grid(kind).shape(),
                (tensor::Shape{1, config.grid.height, config.grid.width}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllScenes, SequenceSceneSweep,
                         ::testing::ValuesIn(all_scene_types()),
                         [](const auto& info) {
                           return scene_type_name(info.param);
                         });

}  // namespace
}  // namespace eco::dataset
