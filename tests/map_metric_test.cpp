#include "eval/map_metric.hpp"

#include <gtest/gtest.h>

#include "eval/metrics.hpp"

namespace eco::eval {
namespace {

detect::Detection make_det(detect::Box box, detect::ObjectClass cls,
                           float score) {
  detect::Detection d;
  d.box = box;
  d.cls = cls;
  d.score = score;
  return d;
}

detect::GroundTruth make_gt(detect::Box box, detect::ObjectClass cls) {
  detect::GroundTruth gt;
  gt.box = box;
  gt.cls = cls;
  return gt;
}

TEST(MapTest, PerfectDetectionsScoreOne) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar),
                        make_gt({10, 10, 14, 14}, detect::ObjectClass::kVan)};
  frame.detections = {
      make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.9f),
      make_det({10, 10, 14, 14}, detect::ObjectClass::kVan, 0.8f)};
  EXPECT_NEAR(mean_average_precision({frame}), 1.0f, 1e-5f);
}

TEST(MapTest, NoDetectionsScoreZero) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  EXPECT_FLOAT_EQ(mean_average_precision({frame}), 0.0f);
}

TEST(MapTest, NoGroundTruthNoScore) {
  FrameResult frame;
  frame.detections = {make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.9f)};
  EXPECT_FLOAT_EQ(mean_average_precision({frame}), 0.0f);
}

TEST(MapTest, WrongClassDoesNotMatch) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  frame.detections = {make_det({0, 0, 4, 4}, detect::ObjectClass::kVan, 0.9f)};
  EXPECT_FLOAT_EQ(mean_average_precision({frame}), 0.0f);
}

TEST(MapTest, IouThresholdGates) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  frame.detections = {
      make_det({2, 2, 6, 6}, detect::ObjectClass::kCar, 0.9f)};  // IoU 4/28
  MapConfig strict;
  EXPECT_FLOAT_EQ(mean_average_precision({frame}, strict), 0.0f);
  MapConfig loose;
  loose.iou_threshold = 0.1f;
  EXPECT_NEAR(mean_average_precision({frame}, loose), 1.0f, 1e-5f);
}

TEST(MapTest, FalsePositiveRankedAboveTruePositiveHurtsAp) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  frame.detections = {
      make_det({20, 20, 24, 24}, detect::ObjectClass::kCar, 0.95f),  // FP first
      make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.60f)};
  // PR: (r=0, p=0) then (r=1, p=0.5) -> AP = 0.5 (all-point).
  EXPECT_NEAR(mean_average_precision({frame}), 0.5f, 1e-5f);
}

TEST(MapTest, FalsePositiveBelowTruePositiveIsFree) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  frame.detections = {
      make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.95f),
      make_det({20, 20, 24, 24}, detect::ObjectClass::kCar, 0.10f)};
  EXPECT_NEAR(mean_average_precision({frame}), 1.0f, 1e-5f);
}

TEST(MapTest, DuplicateDetectionsCountAsFalsePositives) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  frame.detections = {
      make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.9f),
      make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.8f)};  // dup
  // Second detection cannot claim the same GT.
  const auto aps = per_class_ap({frame});
  const auto& car = aps[static_cast<std::size_t>(detect::ObjectClass::kCar)];
  EXPECT_NEAR(car.ap, 1.0f, 1e-5f);  // recall reached at rank 1
  ASSERT_EQ(car.curve.size(), 2u);
  EXPECT_NEAR(car.curve[1].precision, 0.5f, 1e-5f);
}

TEST(MapTest, AveragesOverPresentClassesOnly) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar),
                        make_gt({10, 10, 13, 13}, detect::ObjectClass::kBus)};
  frame.detections = {make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.9f)};
  // Car AP = 1, Bus AP = 0, other classes absent -> mAP = 0.5.
  EXPECT_NEAR(mean_average_precision({frame}), 0.5f, 1e-5f);
}

TEST(MapTest, CrossFrameRankingPoolsDetections) {
  FrameResult a, b;
  a.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  a.detections = {make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.9f)};
  b.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar)};
  b.detections = {make_det({8, 8, 12, 12}, detect::ObjectClass::kCar, 0.95f)};
  // Frame b's FP outranks frame a's TP: AP = 0.5 at full recall 0.5.
  const float map = mean_average_precision({a, b});
  EXPECT_NEAR(map, 0.25f, 1e-5f);
}

TEST(MapTest, ElevenPointInterpolationDiffers) {
  FrameResult frame;
  frame.ground_truth = {make_gt({0, 0, 4, 4}, detect::ObjectClass::kCar),
                        make_gt({10, 10, 14, 14}, detect::ObjectClass::kCar)};
  frame.detections = {
      make_det({0, 0, 4, 4}, detect::ObjectClass::kCar, 0.9f),
      make_det({30, 30, 34, 34}, detect::ObjectClass::kCar, 0.5f)};
  MapConfig voc07;
  voc07.eleven_point = true;
  const float ap_all = mean_average_precision({frame});
  const float ap_11 = mean_average_precision({frame}, voc07);
  // recall 0.5 at precision 1: all-point AP = 0.5; 11-point = 6/11.
  EXPECT_NEAR(ap_all, 0.5f, 1e-5f);
  EXPECT_NEAR(ap_11, 6.0f / 11.0f, 1e-5f);
}

TEST(RunningStatsTest, WelfordMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_NEAR(stats.mean(), 5.0, 1e-12);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.add(3.0);
  EXPECT_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
}

TEST(MeanOfTest, HandlesEmptyAndValues) {
  EXPECT_EQ(mean_of(std::vector<double>{}), 0.0);
  EXPECT_NEAR(mean_of(std::vector<double>{1.0, 2.0, 3.0}), 2.0, 1e-12);
  EXPECT_NEAR(mean_of(std::vector<float>{1.0f, 3.0f}), 2.0f, 1e-6f);
}

}  // namespace
}  // namespace eco::eval
