// TensorArena / FrameArena semantics and the zero-allocation contract:
// pooled tensors are recycled across resets with stable addresses, arena
// reuse is bitwise invisible in results, and a second frame through a
// warmed arena performs zero tensor heap allocations — measured with the
// thread-local tensor_alloc_count the pipeline also samples.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "dataset/generator.hpp"
#include "exec/frame_arena.hpp"
#include "exec/workspace.hpp"
#include "gating/knowledge_gate.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/stream.hpp"
#include "tensor/arena.hpp"

namespace eco {
namespace {

const core::EcoFusionEngine& engine() {
  static const core::EcoFusionEngine instance;
  return instance;
}

dataset::Frame test_frame(std::uint64_t id) {
  dataset::DatasetConfig config;
  return dataset::generate_frame(dataset::SceneType::kCity, config, id);
}

TEST(TensorArenaTest, RecyclesSlotsWithStableAddressesAndNoReallocation) {
  tensor::TensorArena arena;
  tensor::Tensor& a = arena.acquire({4, 8, 8});
  tensor::Tensor& b = arena.acquire({16});
  a.fill(1.0f);
  b.fill(2.0f);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_GE(arena.heap_allocs(), 2u);
  EXPECT_EQ(arena.bytes_high_water(), (4 * 8 * 8 + 16) * sizeof(float));

  const std::uint64_t warmed = arena.heap_allocs();
  arena.reset();
  EXPECT_EQ(arena.live(), 0u);
  tensor::Tensor& a2 = arena.acquire({4, 8, 8});
  tensor::Tensor& b2 = arena.acquire({16});
  // Same slots, same storage, no new heap allocations.
  EXPECT_EQ(&a2, &a);
  EXPECT_EQ(&b2, &b);
  EXPECT_EQ(arena.heap_allocs(), warmed);

  // Smaller shapes reuse capacity too.
  arena.reset();
  (void)arena.acquire({2, 3});
  EXPECT_EQ(arena.heap_allocs(), warmed);
}

TEST(TensorArenaTest, AcquireZeroedClearsStaleContents) {
  tensor::TensorArena arena;
  arena.acquire({8}).fill(7.0f);
  arena.reset();
  const tensor::Tensor& t = arena.acquire_zeroed({8});
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorAllocCountTest, CountsConstructionsCopiesAndGrowth) {
  const std::uint64_t base = tensor::tensor_alloc_count();
  tensor::Tensor t({4, 4});
  EXPECT_EQ(tensor::tensor_alloc_count(), base + 1);
  tensor::Tensor copy = t;
  EXPECT_EQ(tensor::tensor_alloc_count(), base + 2);
  tensor::Tensor moved = std::move(copy);  // moves are free
  EXPECT_EQ(tensor::tensor_alloc_count(), base + 2);
  moved.resize({2, 2});  // shrink within capacity: free
  EXPECT_EQ(tensor::tensor_alloc_count(), base + 2);
  moved.resize({8, 8});  // growth: counted
  EXPECT_EQ(tensor::tensor_alloc_count(), base + 3);
}

TEST(FrameArenaTest, SecondFrameThroughOneArenaMakesZeroTensorAllocs) {
  const dataset::Frame first = test_frame(1);
  const dataset::Frame second = test_frame(2);
  const std::size_t config_index = engine().baselines().late;

  exec::FrameArena arena;
  core::RunResult warm;
  {
    exec::FrameWorkspace ws(engine(), first, /*share_channel_scans=*/true,
                            &arena);
    warm = engine().run_selected(ws, config_index,
                                 energy::GateComplexity::kNone);
  }
  // The warmed arena absorbs every per-frame tensor: scanning and scoring
  // the second frame touches the heap zero times (tensor buffers).
  const std::uint64_t before = tensor::tensor_alloc_count();
  exec::FrameWorkspace ws(engine(), second, /*share_channel_scans=*/true,
                          &arena);
  const core::RunResult reused =
      engine().run_selected(ws, config_index, energy::GateComplexity::kNone);
  EXPECT_EQ(tensor::tensor_alloc_count(), before);
  EXPECT_GT(reused.detections.size() + warm.detections.size(), 0u);

  // And arena routing is bitwise invisible: a fresh workspace without an
  // external arena produces the identical result.
  exec::FrameWorkspace fresh(engine(), second);
  const core::RunResult baseline =
      engine().run_selected(fresh, config_index, energy::GateComplexity::kNone);
  ASSERT_EQ(reused.detections.size(), baseline.detections.size());
  for (std::size_t i = 0; i < baseline.detections.size(); ++i) {
    EXPECT_EQ(reused.detections[i].box.x1, baseline.detections[i].box.x1);
    EXPECT_EQ(reused.detections[i].score, baseline.detections[i].score);
    EXPECT_EQ(reused.detections[i].cls, baseline.detections[i].cls);
  }
  EXPECT_EQ(reused.loss.total(), baseline.loss.total());
  EXPECT_GT(ws.arena_bytes_high_water(), 0u);
}

TEST(FrameArenaTest, ArenaBackedGateFeaturesAreBitwiseExact) {
  const dataset::Frame frame = test_frame(5);
  const tensor::Tensor expected = engine().stems().gate_features(frame);

  tensor::TensorArena arena;
  const tensor::Tensor& warm = engine().stems().gate_features_into(frame, arena);
  EXPECT_TRUE(warm.equals(expected));

  // A second pass through the warmed arena allocates nothing and still
  // matches bitwise.
  arena.reset();
  const std::uint64_t before = tensor::tensor_alloc_count();
  const tensor::Tensor& reused =
      engine().stems().gate_features_into(frame, arena);
  EXPECT_EQ(tensor::tensor_alloc_count(), before);
  EXPECT_TRUE(reused.equals(expected));
}

// Pipeline-level contract: after the first TWO control windows warm the
// ping-ponged slot sets (the window-pipelined scheduler keeps 2x window
// slots so phase A of window W+1 can overlap phase B of window W), every
// frame reports tensor_allocs == 0; the counters are worker-count invariant
// and survive finalize_report's re-reduction.
TEST(PipelineArenaTest, SteadyStateFramesReportZeroAllocs) {
  const core::EcoFusionEngine shared_engine;
  const runtime::GateFactory gate_factory = [&shared_engine] {
    return std::make_unique<gating::KnowledgeGate>(
        shared_engine.default_knowledge_table(),
        shared_engine.config_space().size());
  };
  runtime::StreamConfig stream_config;
  stream_config.sequence.length = 6;
  stream_config.sequences_per_scene = 1;
  stream_config.seed = 91;

  auto run = [&](std::size_t workers) {
    runtime::PipelineConfig config;
    config.workers = workers;
    config.window = 16;
    runtime::StreamingPipeline pipeline(shared_engine, config);
    runtime::FrameStream stream(stream_config);
    return pipeline.run(stream, gate_factory);
  };

  const runtime::PipelineReport one = run(1);
  ASSERT_GT(one.frames, 32u);
  std::size_t steady = 0;
  for (const runtime::FrameStats& stats : one.frame_stats) {
    if (stats.stream_index >= 32) {
      EXPECT_EQ(stats.tensor_allocs, 0u) << "frame " << stats.stream_index;
      ++steady;
    }
  }
  EXPECT_EQ(steady, one.frames - 32);
  EXPECT_GE(one.exec.zero_alloc_frames, steady);
  EXPECT_GT(one.exec.tensor_allocs, 0u);  // warm-up is visible
  EXPECT_GT(one.exec.arena_bytes_high_water, 0u);

  // Worker-count invariance of the new counters, per frame and aggregate.
  const runtime::PipelineReport four = run(4);
  ASSERT_EQ(one.frame_stats.size(), four.frame_stats.size());
  for (std::size_t i = 0; i < one.frame_stats.size(); ++i) {
    EXPECT_EQ(one.frame_stats[i].tensor_allocs,
              four.frame_stats[i].tensor_allocs);
    EXPECT_EQ(one.frame_stats[i].arena_bytes_high_water,
              four.frame_stats[i].arena_bytes_high_water);
  }
  EXPECT_EQ(one.exec.tensor_allocs, four.exec.tensor_allocs);
  EXPECT_EQ(one.exec.arena_bytes_high_water,
            four.exec.arena_bytes_high_water);
  EXPECT_EQ(one.exec.zero_alloc_frames, four.exec.zero_alloc_frames);
}

}  // namespace
}  // namespace eco
