// End-to-end integration tests: dataset -> engine -> gates -> joint
// optimization, checking the qualitative properties the paper's evaluation
// rests on (on a reduced dataset so the suite stays fast).
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "dataset/generator.hpp"
#include "eval/map_metric.hpp"
#include "eval/metrics.hpp"
#include "gating/gate_trainer.hpp"
#include "gating/knowledge_gate.hpp"
#include "gating/learned_gate.hpp"
#include "gating/loss_gate.hpp"

namespace eco {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static dataset::Dataset& data() {
    static dataset::Dataset instance = [] {
      dataset::DatasetConfig config;
      config.frames_per_scene = 12;
      return dataset::Dataset(config);
    }();
    return instance;
  }
  static const core::EcoFusionEngine& engine() {
    static core::EcoFusionEngine instance;
    return instance;
  }

  static double mean_static_loss(std::size_t config_index,
                                 const std::vector<std::size_t>& frames) {
    eval::RunningStats stats;
    for (std::size_t i : frames) {
      stats.add(engine().run_static(data().frame(i), config_index).loss.total());
    }
    return stats.mean();
  }
};

TEST_F(IntegrationTest, EarlyFusionCollapsesInFogButNotInCity) {
  const std::size_t early = engine().baselines().early;
  const double city_loss =
      mean_static_loss(early, data().test_indices_for_scene(
                                  dataset::SceneType::kCity));
  const double fog_loss = mean_static_loss(
      early, data().test_indices_for_scene(dataset::SceneType::kFog));
  // Figure 5's headline: early fusion's loss spikes in difficult weather.
  EXPECT_GT(fog_loss, 1.3 * city_loss);
}

TEST_F(IntegrationTest, LateFusionIsRobustAcrossScenes) {
  const std::size_t late = engine().baselines().late;
  const std::size_t early = engine().baselines().early;
  for (dataset::SceneType scene :
       {dataset::SceneType::kFog, dataset::SceneType::kSnow}) {
    const auto frames = data().test_indices_for_scene(scene);
    EXPECT_LT(mean_static_loss(late, frames), mean_static_loss(early, frames))
        << dataset::scene_type_name(scene);
  }
}

TEST_F(IntegrationTest, OracleEcoFusionBeatsLateFusionLossAtLowerEnergy) {
  gating::LossBasedGate oracle(engine().config_space().size());
  core::JointOptParams params;
  params.gamma = 0.5f;
  params.lambda_energy = 0.01f;
  eval::RunningStats eco_loss, eco_energy, late_loss;
  const std::size_t late = engine().baselines().late;
  for (std::size_t i : data().test_indices()) {
    const auto& frame = data().frame(i);
    const auto adaptive = engine().run_adaptive(frame, oracle, params);
    eco_loss.add(adaptive.run.loss.total());
    eco_energy.add(adaptive.run.energy_j);
    late_loss.add(engine().run_static(frame, late).loss.total());
  }
  EXPECT_LT(eco_loss.mean(), late_loss.mean());
  EXPECT_LT(eco_energy.mean(),
            0.75 * engine().static_energy_j(late));
}

TEST_F(IntegrationTest, LambdaSweepTradesEnergyForLoss) {
  gating::LossBasedGate oracle(engine().config_space().size());
  const auto frames = data().test_indices();
  double energy_low_lambda = 0.0, energy_high_lambda = 0.0;
  for (float lambda : {0.0f, 1.0f}) {
    core::JointOptParams params;
    params.gamma = 2.0f;
    params.lambda_energy = lambda;
    eval::RunningStats energy;
    for (std::size_t i : frames) {
      energy.add(
          engine().run_adaptive(data().frame(i), oracle, params).run.energy_j);
    }
    (lambda == 0.0f ? energy_low_lambda : energy_high_lambda) = energy.mean();
  }
  // Raising λ_E must not increase energy.
  EXPECT_LE(energy_high_lambda, energy_low_lambda + 1e-6);
}

TEST_F(IntegrationTest, TrainedGateBeatsUntrainedOnSelection) {
  // Build a small training set from the train split.
  std::vector<gating::GateExample> examples;
  for (std::size_t i : data().train_indices()) {
    if (examples.size() >= 48) break;
    gating::GateExample example;
    example.features = engine().gate_features(data().frame(i));
    example.config_losses = engine().config_losses(data().frame(i));
    examples.push_back(std::move(example));
  }
  gating::LearnedGateConfig config;
  config.in_channels = engine().stems().gate_channels();
  config.num_configs = engine().config_space().size();
  gating::LearnedGate gate(config);
  const float before = gating::gate_selection_accuracy(gate, examples);
  gating::GateTrainConfig train_config;
  train_config.epochs = 20;
  (void)gating::train_gate(gate, examples, train_config);
  const float after = gating::gate_selection_accuracy(gate, examples);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 1.5f / 15.0f);  // well above uniform chance
}

TEST_F(IntegrationTest, KnowledgeGateSelectsItsTableEntryEndToEnd) {
  gating::KnowledgeGate gate(engine().default_knowledge_table(),
                             engine().config_space().size());
  for (dataset::SceneType scene :
       {dataset::SceneType::kCity, dataset::SceneType::kFog}) {
    const auto frames = data().test_indices_for_scene(scene);
    ASSERT_FALSE(frames.empty());
    const auto result =
        engine().run_adaptive(data().frame(frames[0]), gate);
    EXPECT_EQ(result.run.config_index, gate.choice_for(scene));
  }
}

TEST_F(IntegrationTest, SingleSensorMapOrderingCamerasLeadRadarTrails) {
  const auto& b = engine().baselines();
  auto map_of = [&](std::size_t config_index) {
    std::vector<eval::FrameResult> results;
    for (std::size_t i : data().test_indices()) {
      auto run = engine().run_static(data().frame(i), config_index);
      results.push_back({std::move(run.detections), data().frame(i).objects});
    }
    return eval::mean_average_precision(results);
  };
  const float cr = map_of(b.camera_right);
  const float cl = map_of(b.camera_left);
  const float radar = map_of(b.radar);
  EXPECT_GT(cr, cl);     // right camera leads (paper Table 1)
  EXPECT_GT(cl, radar);  // radar trails every other single sensor
}

TEST_F(IntegrationTest, EndToEndDeterminism) {
  gating::LossBasedGate oracle(engine().config_space().size());
  const auto& frame = data().frame(data().test_indices()[0]);
  const auto a = engine().run_adaptive(frame, oracle);
  const auto b = engine().run_adaptive(frame, oracle);
  EXPECT_EQ(a.run.config_index, b.run.config_index);
  EXPECT_EQ(a.run.detections.size(), b.run.detections.size());
  EXPECT_EQ(a.predicted_losses, b.predicted_losses);
}

}  // namespace
}  // namespace eco
