#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <vector>

#include "gating/knowledge_gate.hpp"
#include "gating/learned_gate.hpp"
#include "gating/loss_gate.hpp"
#include "runtime/shard.hpp"
#include "runtime/stream.hpp"
#include "runtime/thread_pool.hpp"

namespace eco::runtime {
namespace {

ShardGateFactory knowledge_factory() {
  return [](const core::EcoFusionEngine& engine) {
    return std::make_unique<gating::KnowledgeGate>(
        engine.default_knowledge_table(), engine.config_space().size());
  };
}

// An (untrained) Deep gate with deterministic fixed-seed weights; it pulls
// the stem features F every frame, so shard routing of the temporal stem
// cache is genuinely on the path.
ShardGateFactory deep_factory() {
  return [](const core::EcoFusionEngine& engine) {
    gating::LearnedGateConfig config;
    config.num_configs = engine.config_space().size();
    return std::make_unique<gating::LearnedGate>(config);
  };
}

ShardGateFactory oracle_factory() {
  return [](const core::EcoFusionEngine& engine) {
    return std::make_unique<gating::LossBasedGate>(
        engine.config_space().size());
  };
}

StreamConfig small_stream() {
  StreamConfig config;
  config.sequence.length = 8;
  config.sequences_per_scene = 1;
  config.seed = 99;
  return config;
}

ShardedReport run_sharded(std::size_t shards, std::size_t workers,
                          const ShardGateFactory& gates,
                          StreamConfig stream_config = small_stream(),
                          std::optional<BudgetConfig> budget = std::nullopt,
                          std::optional<DeadlineConfig> deadline =
                              std::nullopt,
                          bool share_channel_scans = true) {
  ShardedConfig config;
  config.shards = shards;
  config.pipeline.workers = workers;
  config.pipeline.window = 16;
  config.pipeline.joint.gamma = 2.0f;
  config.pipeline.budget = budget;
  config.pipeline.deadline = deadline;
  config.pipeline.share_channel_scans = share_channel_scans;
  ShardedPipeline pipeline(config);
  return pipeline.run(stream_config, gates);
}

/// Bitwise equality of the merged-report fields the sharded determinism
/// contract covers. `compare_batching` is off when comparing *different
/// shard counts*: phase-B groups form within a shard's window, so group
/// sizes legitimately depend on the shard topology. `compare_lambdas` is
/// off when closed-loop controllers run (per-shard trajectories).
/// `compare_scan_unique` is off when comparing channel-sharing on vs off
/// runs: the unique-scan count is the one field the toggle legitimately
/// moves (requested counts must still match bitwise).
void expect_merged_equal(const PipelineReport& a, const PipelineReport& b,
                         bool compare_batching, bool compare_lambdas = true,
                         bool compare_scan_unique = true) {
  ASSERT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_EQ(a.map, b.map);
  EXPECT_EQ(a.total_detections, b.total_detections);
  ASSERT_EQ(a.frame_stats.size(), b.frame_stats.size());
  for (std::size_t i = 0; i < a.frame_stats.size(); ++i) {
    const FrameStats& x = a.frame_stats[i];
    const FrameStats& y = b.frame_stats[i];
    EXPECT_EQ(x.stream_index, y.stream_index);
    EXPECT_EQ(x.scene, y.scene);
    EXPECT_EQ(x.config_index, y.config_index);
    EXPECT_EQ(x.loss, y.loss);              // bitwise
    EXPECT_EQ(x.energy_j, y.energy_j);      // bitwise
    EXPECT_EQ(x.latency_ms, y.latency_ms);  // bitwise
    EXPECT_EQ(x.detections, y.detections);
    EXPECT_EQ(x.stem_source, y.stem_source);
    EXPECT_EQ(x.branch_runs, y.branch_runs);
    EXPECT_EQ(x.channel_scans_requested, y.channel_scans_requested);
    if (compare_scan_unique) {
      EXPECT_EQ(x.channel_scans_unique, y.channel_scans_unique);
    }
    if (compare_lambdas) {
      EXPECT_EQ(x.lambda_energy, y.lambda_energy);
      EXPECT_EQ(x.lambda_latency, y.lambda_latency);
    }
    if (compare_batching) {
      EXPECT_EQ(x.batch_size, y.batch_size);
    }
  }
  ASSERT_EQ(a.per_scene.size(), b.per_scene.size());
  for (std::size_t s = 0; s < a.per_scene.size(); ++s) {
    EXPECT_EQ(a.per_scene[s].scene, b.per_scene[s].scene);
    EXPECT_EQ(a.per_scene[s].frames, b.per_scene[s].frames);
    EXPECT_EQ(a.per_scene[s].mean_loss, b.per_scene[s].mean_loss);
    EXPECT_EQ(a.per_scene[s].mean_energy_j, b.per_scene[s].mean_energy_j);
    EXPECT_EQ(a.per_scene[s].mean_latency_ms, b.per_scene[s].mean_latency_ms);
    EXPECT_EQ(a.per_scene[s].map, b.per_scene[s].map);
    EXPECT_EQ(a.per_scene[s].stem_cache_hits, b.per_scene[s].stem_cache_hits);
    EXPECT_EQ(a.per_scene[s].stem_cache_misses,
              b.per_scene[s].stem_cache_misses);
    if (compare_batching) {
      EXPECT_EQ(a.per_scene[s].mean_batch, b.per_scene[s].mean_batch);
    }
  }
  EXPECT_EQ(a.exec.stems_skipped, b.exec.stems_skipped);
  EXPECT_EQ(a.exec.stems_computed, b.exec.stems_computed);
  EXPECT_EQ(a.exec.stem_cache_hits, b.exec.stem_cache_hits);
  EXPECT_EQ(a.exec.stem_cache_misses, b.exec.stem_cache_misses);
  EXPECT_EQ(a.exec.branch_runs, b.exec.branch_runs);
  EXPECT_EQ(a.exec.channel_scans_requested, b.exec.channel_scans_requested);
  if (compare_scan_unique) {
    EXPECT_EQ(a.exec.channel_scans_unique, b.exec.channel_scans_unique);
  }
  if (compare_batching) {
    EXPECT_EQ(a.exec.batches, b.exec.batches);
    EXPECT_EQ(a.exec.batched_frames, b.exec.batched_frames);
    EXPECT_EQ(a.exec.max_batch, b.exec.max_batch);
    EXPECT_EQ(a.exec.mean_batch, b.exec.mean_batch);
  }
}

TEST(ShardOfTest, IsDeterministicAndInRange) {
  for (std::uint64_t id : {0ull, 1ull, 99ull, 0xdeadbeefull}) {
    EXPECT_EQ(shard_of(id, 1), 0u);
    for (std::size_t count : {2u, 3u, 4u, 7u}) {
      const std::size_t shard = shard_of(id, count);
      EXPECT_LT(shard, count);
      EXPECT_EQ(shard, shard_of(id, count));  // stable
    }
  }
}

// A sharded stream partitions the unsharded stream exactly: every shard
// delivers only its own sequences, global indices survive, and the union
// over shards is the full stream.
TEST(ShardedStreamTest, ShardsPartitionTheStreamWithGlobalIndices) {
  const StreamConfig base = small_stream();
  auto collect = [](StreamConfig config) {
    FrameStream stream(config);
    std::vector<StreamFrame> frames;
    while (auto frame = stream.next()) frames.push_back(std::move(*frame));
    return frames;
  };
  const std::vector<StreamFrame> full = collect(base);
  ASSERT_FALSE(full.empty());

  const std::size_t shards = 3;
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    StreamConfig config = base;
    config.shard_count = shards;
    config.shard_index = s;
    const std::vector<StreamFrame> part = collect(config);
    FrameStream probe(config);
    EXPECT_EQ(probe.total_frames(), part.size());
    std::size_t previous = 0;
    bool first = true;
    for (const StreamFrame& frame : part) {
      EXPECT_EQ(shard_of(frame.sequence_id, shards), s);
      // Global order preserved within the shard.
      if (!first) {
        EXPECT_GT(frame.index, previous);
      }
      previous = frame.index;
      first = false;
      // The frame is the unsharded stream's frame at that index, verbatim.
      ASSERT_LT(frame.index, full.size());
      EXPECT_EQ(full[frame.index].sequence_id, frame.sequence_id);
      EXPECT_EQ(full[frame.index].scene, frame.scene);
      EXPECT_EQ(full[frame.index].frame.id, frame.frame.id);
      EXPECT_TRUE(seen.insert(frame.index).second);  // delivered once
    }
    total += part.size();
  }
  EXPECT_EQ(total, full.size());  // no frame lost, none duplicated
}

// Sequences owned by *other* shards must still advance the global index —
// the precomputed stitch schedule has to skip them without generating them.
// Odd sequences_per_scene makes ownership uneven across shard counts, which
// is exactly where an off-by-one in the round arithmetic would surface.
TEST(ShardedStreamTest, NonOwnedLanesAdvanceGlobalIndexForOddSequenceCounts) {
  StreamConfig base = small_stream();
  base.sequences_per_scene = 3;

  // The unsharded stream is the schedule: indices are exactly 0..N-1.
  FrameStream full_stream(base);
  std::vector<StreamFrame> full;
  while (auto frame = full_stream.next()) full.push_back(std::move(*frame));
  ASSERT_FALSE(full.empty());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].index, i);
  }

  for (std::size_t shards : {1u, 2u, 3u}) {
    std::set<std::size_t> seen;
    std::size_t total = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      StreamConfig config = base;
      config.shard_count = shards;
      config.shard_index = s;
      FrameStream stream(config);
      while (auto frame = stream.next()) {
        ASSERT_LT(frame->index, full.size());
        const StreamFrame& expected = full[frame->index];
        EXPECT_EQ(expected.sequence_id, frame->sequence_id);
        EXPECT_EQ(expected.scene, frame->scene);
        EXPECT_EQ(expected.frame.id, frame->frame.id);
        EXPECT_TRUE(expected.frame.grid(dataset::SensorKind::kLidar)
                        .equals(frame->frame.grid(dataset::SensorKind::kLidar)));
        EXPECT_TRUE(seen.insert(frame->index).second);
        ++total;
      }
    }
    // Union over shards is the full stream: no frame lost, none duplicated.
    EXPECT_EQ(total, full.size()) << shards << " shards";
  }
}

// The headline contract: with fixed scoring weights the merged report is
// bitwise identical at 1/2/4 shards × 1/4 workers. The Deep gate pulls F
// every frame, so the per-shard temporal stem caches are on the path.
TEST(ShardedPipelineTest, MergedReportBitwiseInvariantAcrossShardsAndWorkers) {
  std::vector<ShardedReport> reports;
  for (std::size_t shards : {1u, 2u, 4u}) {
    for (std::size_t workers : {1u, 4u}) {
      reports.push_back(run_sharded(shards, workers, deep_factory()));
    }
  }
  const PipelineReport& reference = reports.front().merged;
  ASSERT_GT(reference.frames, 0u);
  // Merged stream order restored exactly: index i holds stream index i.
  for (std::size_t i = 0; i < reference.frame_stats.size(); ++i) {
    EXPECT_EQ(reference.frame_stats[i].stream_index, i);
  }
  for (std::size_t r = 1; r < reports.size(); ++r) {
    // Same shard count (pairs) compare batching too; across shard counts
    // batching is topology observability and excluded.
    const bool same_shards = (r / 2) == 0;
    expect_merged_equal(reference, reports[r].merged,
                        /*compare_batching=*/same_shards);
  }
  // Stem-cache behaviour is invariant under shard routing: sequences are
  // routed whole, so each sequence costs exactly one miss, and the summed
  // hit counters match the unsharded run (pinned by expect_merged_equal
  // above; spot-check the absolute values here).
  EXPECT_EQ(reference.exec.stem_cache_misses, dataset::kNumSceneTypes);
  EXPECT_EQ(reference.exec.stem_cache_hits,
            reference.frames - dataset::kNumSceneTypes);
}

// Channel-scan sharing is bitwise invisible end to end: across 1/2 shards
// × 1/4 workers × sharing on/off, merged reports are identical in every
// contract field — the unique-scan counter is the only one the toggle may
// move, and on this stream (whose fog/snow lanes select the 7-channel/
// 4-unique ensemble configuration) sharing genuinely dedups while the
// unshared path pays full price.
TEST(ShardedPipelineTest, ChannelShareOnOffBitwiseInvariantAcrossTopologies) {
  std::vector<ShardedReport> shared_runs;
  std::vector<ShardedReport> unshared_runs;
  for (std::size_t shards : {1u, 2u}) {
    for (std::size_t workers : {1u, 4u}) {
      shared_runs.push_back(run_sharded(shards, workers, knowledge_factory(),
                                        small_stream(), std::nullopt,
                                        std::nullopt,
                                        /*share_channel_scans=*/true));
      unshared_runs.push_back(run_sharded(shards, workers, knowledge_factory(),
                                          small_stream(), std::nullopt,
                                          std::nullopt,
                                          /*share_channel_scans=*/false));
    }
  }
  const PipelineReport& reference = shared_runs.front().merged;
  ASSERT_GT(reference.frames, 0u);
  EXPECT_LT(reference.exec.channel_scans_unique,
            reference.exec.channel_scans_requested);
  for (std::size_t r = 0; r < shared_runs.size(); ++r) {
    const bool same_shards = r < 2;  // runs 0,1 are 1-shard like reference
    // Same toggle: full equality including the unique counters.
    expect_merged_equal(reference, shared_runs[r].merged,
                        /*compare_batching=*/same_shards,
                        /*compare_lambdas=*/true,
                        /*compare_scan_unique=*/true);
    // Across the toggle: everything but the unique counters.
    expect_merged_equal(reference, unshared_runs[r].merged,
                        /*compare_batching=*/same_shards,
                        /*compare_lambdas=*/true,
                        /*compare_scan_unique=*/false);
    EXPECT_EQ(unshared_runs[r].merged.exec.channel_scans_unique,
              unshared_runs[r].merged.exec.channel_scans_requested);
  }
}

// A 1-shard ShardedPipeline is the StreamingPipeline: the merged report
// reproduces a plain pipeline run over the same engine config bitwise,
// including batching observability.
TEST(ShardedPipelineTest, SingleShardMatchesPlainPipeline) {
  const ShardedReport sharded = run_sharded(1, 2, knowledge_factory());

  ShardedConfig config;
  config.shards = 1;
  config.pipeline.workers = 2;
  config.pipeline.window = 16;
  config.pipeline.joint.gamma = 2.0f;
  const ShardedPipeline owner(config);  // borrow an identical engine
  StreamingPipeline plain(owner.engine(0), config.pipeline);
  FrameStream stream(small_stream());
  const PipelineReport direct = plain.run(stream, [&owner] {
    return std::make_unique<gating::KnowledgeGate>(
        owner.engine(0).default_knowledge_table(),
        owner.engine(0).config_space().size());
  });
  expect_merged_equal(sharded.merged, direct, /*compare_batching=*/true);
  ASSERT_EQ(sharded.shards.size(), 1u);
  EXPECT_EQ(sharded.shards[0].frames, direct.frames);
  ASSERT_EQ(sharded.shards[0].lambda_trace.size(), direct.lambda_trace.size());
  for (std::size_t i = 0; i < direct.lambda_trace.size(); ++i) {
    EXPECT_EQ(sharded.shards[0].lambda_trace[i], direct.lambda_trace[i]);
  }
}

// With per-shard closed loops active, shard-count invariance is out (each
// shard holds its own budget over its own sub-stream — by design), but for
// a FIXED shard count everything, including every shard's λ traces, stays
// bitwise deterministic across worker counts.
TEST(ShardedPipelineTest, ControllersStayDeterministicAcrossWorkerCounts) {
  StreamConfig stream_config = small_stream();
  stream_config.sequence.length = 10;
  stream_config.sequences_per_scene = 2;
  BudgetConfig budget;
  budget.target_j_per_frame = 1.8;
  budget.initial_lambda = 0.0f;
  budget.gain = 0.5f;
  budget.max_step = 0.25f;
  DeadlineConfig deadline;
  deadline.target_ms_per_frame = 38.0;
  deadline.initial_lambda = 0.0f;
  deadline.gain = 0.5f;
  deadline.max_step = 0.25f;

  const ShardedReport one = run_sharded(2, 1, oracle_factory(), stream_config,
                                        budget, deadline);
  const ShardedReport four = run_sharded(2, 4, oracle_factory(), stream_config,
                                         budget, deadline);
  expect_merged_equal(one.merged, four.merged, /*compare_batching=*/true);
  ASSERT_EQ(one.shards.size(), four.shards.size());
  for (std::size_t s = 0; s < one.shards.size(); ++s) {
    ASSERT_EQ(one.shards[s].lambda_trace.size(),
              four.shards[s].lambda_trace.size());
    for (std::size_t i = 0; i < one.shards[s].lambda_trace.size(); ++i) {
      EXPECT_EQ(one.shards[s].lambda_trace[i],
                four.shards[s].lambda_trace[i]);
      EXPECT_EQ(one.shards[s].deadline_trace[i],
                four.shards[s].deadline_trace[i]);
    }
    EXPECT_EQ(one.shards[s].final_lambda, four.shards[s].final_lambda);
    EXPECT_EQ(one.shards[s].final_lambda_latency,
              four.shards[s].final_lambda_latency);
  }
}

// TaskGroup barriers are per client: waiting on one group must not stall
// on another group's queued work — the property that lets shards share a
// pool without serialising at each other's window barriers.
TEST(TaskGroupTest, WaitCoversOnlyOwnGroup) {
  ThreadPool pool(2);
  TaskGroup blocked_group;
  TaskGroup quick_group;
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> quick_done{0};
  // Occupy one worker with a task that blocks until released.
  pool.submit(blocked_group, [gate](std::size_t) { gate.wait(); });
  for (int i = 0; i < 8; ++i) {
    pool.submit(quick_group, [&quick_done](std::size_t) { ++quick_done; });
  }
  quick_group.wait();  // must return while blocked_group is still running
  EXPECT_EQ(quick_done.load(), 8);
  release.set_value();
  blocked_group.wait();
  pool.wait_idle();
}

}  // namespace
}  // namespace eco::runtime
