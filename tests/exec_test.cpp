// Tests for the shared-execution layer: FrameWorkspace memoization,
// TemporalStemCache bitwise-exact reuse/delta refresh, batched branch
// execution, and the row-restricted conv entry point they build on.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/engine.hpp"
#include "dataset/sequence.hpp"
#include "exec/batcher.hpp"
#include "exec/stem_cache.hpp"
#include "exec/workspace.hpp"
#include "gating/knowledge_gate.hpp"
#include "gating/loss_gate.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace eco::exec {
namespace {

const core::EcoFusionEngine& engine() {
  static core::EcoFusionEngine instance;
  return instance;
}

dataset::Sequence test_sequence(dataset::SceneType scene, std::size_t length,
                                std::uint64_t id = 1) {
  dataset::SequenceConfig config;
  config.length = length;
  config.seed = 2024;
  return dataset::generate_sequence(scene, config, id);
}

void expect_same_detections(const std::vector<detect::Detection>& a,
                            const std::vector<detect::Detection>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].box.x1, b[i].box.x1);
    EXPECT_EQ(a[i].box.y1, b[i].box.y1);
    EXPECT_EQ(a[i].box.x2, b[i].box.x2);
    EXPECT_EQ(a[i].box.y2, b[i].box.y2);
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_EQ(a[i].score, b[i].score);
  }
}

// The satellite fix pinned: with an oracle gate, run_adaptive used to
// compute config_losses (all 7 branches) and then execute the winning
// configuration's branches a second time. Through the workspace every
// branch runs at most once per frame.
TEST(FrameWorkspaceTest, OracleAdaptivePassRunsEachBranchOnce) {
  const auto seq = test_sequence(dataset::SceneType::kRain, 1);
  gating::LossBasedGate oracle(engine().config_space().size());

  FrameWorkspace ws(engine(), seq.frames[0]);
  const core::AdaptiveResult result = engine().run_adaptive(ws, oracle);
  EXPECT_EQ(ws.branch_executions(), core::kNumBranches);
  EXPECT_FALSE(result.run.detections.empty());

  // A second pass over the same workspace adds no executions at all.
  (void)engine().run_adaptive(ws, oracle);
  EXPECT_EQ(ws.branch_executions(), core::kNumBranches);
}

TEST(FrameWorkspaceTest, KnowledgeGateSkipsStemsAndExtraBranches) {
  const auto seq = test_sequence(dataset::SceneType::kCity, 1);
  gating::KnowledgeGate gate(engine().default_knowledge_table(),
                             engine().config_space().size());

  FrameWorkspace ws(engine(), seq.frames[0]);
  const core::AdaptiveResult result = engine().run_adaptive(ws, gate);
  // The knowledge gate never pulls F, so the stems never ran...
  EXPECT_EQ(ws.stem_source(), StemSource::kSkipped);
  // ...and only the selected configuration's branches executed.
  const auto& selected = engine().config_space()[result.run.config_index];
  EXPECT_EQ(ws.branch_executions(), selected.branches.size());
}

TEST(FrameWorkspaceTest, WorkspacePathMatchesFrameWrappers) {
  const auto seq = test_sequence(dataset::SceneType::kFog, 1);
  const dataset::Frame& frame = seq.frames[0];
  gating::LossBasedGate oracle(engine().config_space().size());

  FrameWorkspace ws(engine(), frame);
  const core::AdaptiveResult shared = engine().run_adaptive(ws, oracle);
  const core::AdaptiveResult fresh = engine().run_adaptive(frame, oracle);
  EXPECT_EQ(shared.run.config_index, fresh.run.config_index);
  EXPECT_EQ(shared.run.loss.total(), fresh.run.loss.total());
  EXPECT_EQ(shared.run.energy_j, fresh.run.energy_j);
  expect_same_detections(shared.run.detections, fresh.run.detections);

  const core::RunResult via_ws = engine().run_static(ws, 3);
  const core::RunResult via_frame = engine().run_static(frame, 3);
  EXPECT_EQ(via_ws.loss.total(), via_frame.loss.total());
  expect_same_detections(via_ws.detections, via_frame.detections);
}

TEST(FrameWorkspaceTest, ConfigLossesMatchEngineWrapper) {
  const auto seq = test_sequence(dataset::SceneType::kNight, 1);
  FrameWorkspace ws(engine(), seq.frames[0]);
  const std::vector<float>& shared = ws.config_losses();
  const std::vector<float> fresh = engine().config_losses(seq.frames[0]);
  ASSERT_EQ(shared.size(), fresh.size());
  for (std::size_t i = 0; i < shared.size(); ++i) {
    EXPECT_EQ(shared[i], fresh[i]);  // bitwise
  }
}

// ---- cross-branch channel sharing -----------------------------------

const core::ModelConfig& ensemble_config() {
  for (const core::ModelConfig& c : engine().config_space()) {
    if (c.name == "E(CL+CR+L)+CL+CR+L+R") return c;
  }
  throw std::logic_error("ensemble config missing");
}

// The engine's scan plan proves cross-branch equivalence structurally: the
// paper's ensemble configuration reads 7 input channels of which only 4
// are unique, and every branch set of the substrate collapses to the 4
// sensor scans (same RPN, per-sensor ROI heads/prototypes).
TEST(ChannelScanPlanTest, EnsembleConfigHasSevenChannelsFourUniqueScans) {
  const core::ChannelScanPlan& plan = engine().scan_plan();
  const core::ModelConfig& config = ensemble_config();
  std::size_t channels = 0;
  std::set<std::size_t> unique;
  for (core::BranchId branch : config.branches) {
    const std::size_t inputs =
        engine().branch_detector(branch).config().input_count;
    for (std::size_t c = 0; c < inputs; ++c) {
      ++channels;
      unique.insert(plan.scan_id(branch, c));
    }
  }
  EXPECT_EQ(channels, 7u);
  EXPECT_EQ(unique.size(), 4u);
  // Whole branch set: 11 channels over 7 branches, 4 unique scans, and
  // every shared id pins the same sensor grid.
  EXPECT_EQ(plan.total_channels, 11u);
  EXPECT_EQ(plan.num_scans(), 4u);
  for (std::size_t b = 0; b < core::kNumBranches; ++b) {
    const auto id = static_cast<core::BranchId>(b);
    const auto inputs = core::branch_inputs(id);
    for (std::size_t c = 0; c < inputs.size(); ++c) {
      EXPECT_EQ(plan.scans[plan.scan_id(id, c)].sensor, inputs[c]);
    }
  }
}

// The scan decomposition is exact: per-channel scans merged by the branch
// reproduce detect() bitwise, for single- and multi-channel branches.
TEST(ChannelScanTest, ScanThenMergeMatchesDetect) {
  const auto seq = test_sequence(dataset::SceneType::kFog, 1);
  for (core::BranchId branch : {core::BranchId::kEarlyCamerasLidar,
                                core::BranchId::kLidar}) {
    const auto& detector = engine().branch_detector(branch);
    const std::vector<tensor::Tensor> grids =
        engine().branch_grids(branch, seq.frames[0]);
    std::vector<std::vector<detect::Detection>> scans;
    detect::ScanScratch scratch;
    for (std::size_t c = 0; c < grids.size(); ++c) {
      scans.push_back(detector.scan_channel(c, grids[c], &scratch));
      // Scratch reuse is bitwise invisible.
      expect_same_detections(scans.back(),
                             detector.scan_channel(c, grids[c]));
    }
    expect_same_detections(detector.merge_channel_scans(std::move(scans)),
                           detector.detect(grids));
  }
}

// A workspace materializing the ensemble configuration's branches performs
// exactly 4 scans for the 7 requested channels — and the merged branch
// detections are bitwise identical to unshared and to engine-level runs.
TEST(ChannelScanTest, EnsembleConfigPerformsFourScansForSevenChannels) {
  const auto seq = test_sequence(dataset::SceneType::kSnow, 1);
  const core::ModelConfig& config = ensemble_config();

  FrameWorkspace shared(engine(), seq.frames[0], /*share_channel_scans=*/true);
  FrameWorkspace unshared(engine(), seq.frames[0],
                          /*share_channel_scans=*/false);
  for (core::BranchId branch : config.branches) {
    expect_same_detections(shared.branch_detections(branch),
                           unshared.branch_detections(branch));
    expect_same_detections(shared.branch_detections(branch),
                           engine().run_branch(branch, seq.frames[0]));
  }
  EXPECT_EQ(shared.channel_scans_requested(), 7u);
  EXPECT_EQ(shared.channel_scans_unique(), 4u);
  EXPECT_EQ(unshared.channel_scans_requested(), 7u);
  EXPECT_EQ(unshared.channel_scans_unique(), 7u);
  EXPECT_EQ(shared.branch_executions(), config.branches.size());
  EXPECT_EQ(unshared.branch_executions(), config.branches.size());
}

// An oracle pass (all 7 branches) collapses the branch set's 11 channel
// scans to the 4 sensors.
TEST(ChannelScanTest, OraclePassScansElevenChannelsFourTimes) {
  const auto seq = test_sequence(dataset::SceneType::kRain, 1);
  gating::LossBasedGate oracle(engine().config_space().size());
  FrameWorkspace ws(engine(), seq.frames[0]);
  (void)engine().run_adaptive(ws, oracle);
  EXPECT_EQ(ws.branch_executions(), core::kNumBranches);
  EXPECT_EQ(ws.channel_scans_requested(), 11u);
  EXPECT_EQ(ws.channel_scans_unique(), 4u);
}

// Cache-resolved features must be bitwise equal to a fresh stem pass for
// every frame of a sequence — this is the exactness contract that makes the
// cache legal under the pipeline's determinism guarantee.
TEST(TemporalStemCacheTest, SequenceFeaturesAreBitwiseExact) {
  const auto seq = test_sequence(dataset::SceneType::kMotorway, 6);
  TemporalStemCache cache(engine().stems());
  for (const dataset::Frame& frame : seq.frames) {
    const tensor::Tensor cached = cache.gate_features(42, frame);
    const tensor::Tensor fresh = engine().stems().gate_features(frame);
    ASSERT_EQ(cached.shape(), fresh.shape());
    for (std::size_t i = 0; i < cached.numel(); ++i) {
      ASSERT_EQ(cached[i], fresh[i]) << "feature " << i << " diverged";
    }
  }
  const StemCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.hits, seq.frames.size() - 1);
}

TEST(TemporalStemCacheTest, SparseDeltaRefreshesOnlyTouchedRows) {
  const auto seq = test_sequence(dataset::SceneType::kCity, 1);
  const dataset::Frame& base = seq.frames[0];

  // A localized change: a few cells in two rows of one sensor.
  dataset::Frame moved = base;
  tensor::Tensor& grid =
      moved.sensor_grids[static_cast<std::size_t>(dataset::SensorKind::kLidar)];
  grid.at(0, 10, 7) += 0.25f;
  grid.at(0, 11, 8) += 0.25f;

  TemporalStemCache cache(engine().stems());
  (void)cache.gate_features(7, base);
  bool hit = false;
  const tensor::Tensor delta = cache.gate_features(7, moved, &hit);
  EXPECT_TRUE(hit);

  const tensor::Tensor fresh = engine().stems().gate_features(moved);
  for (std::size_t i = 0; i < delta.numel(); ++i) {
    ASSERT_EQ(delta[i], fresh[i]);
  }
  const StemCacheCounters counters = cache.counters();
  // Three sensors unchanged (maps reused outright); the dirty input rows
  // 10-11 reach pooled rows 4-6 only.
  EXPECT_EQ(counters.reused_sensor_maps, dataset::kNumSensors - 1);
  EXPECT_LE(counters.refreshed_rows, 3u);
  EXPECT_GE(counters.refreshed_rows, 1u);
}

TEST(TemporalStemCacheTest, IdenticalFrameReusesEverySensorMap) {
  const auto seq = test_sequence(dataset::SceneType::kRural, 1);
  TemporalStemCache cache(engine().stems());
  (void)cache.gate_features(9, seq.frames[0]);
  (void)cache.gate_features(9, seq.frames[0]);
  const StemCacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.reused_sensor_maps, dataset::kNumSensors);
  EXPECT_EQ(counters.refreshed_rows, 0u);
}

TEST(TemporalStemCacheTest, EvictionFallsBackToExactRecompute) {
  const auto seq = test_sequence(dataset::SceneType::kSnow, 2);
  StemCacheConfig config;
  config.max_sequences = 1;
  TemporalStemCache cache(engine().stems(), config);
  (void)cache.gate_features(1, seq.frames[0]);
  (void)cache.gate_features(2, seq.frames[0]);  // evicts sequence 1
  bool hit = true;
  const tensor::Tensor recomputed = cache.gate_features(1, seq.frames[1], &hit);
  EXPECT_FALSE(hit);
  const tensor::Tensor fresh = engine().stems().gate_features(seq.frames[1]);
  for (std::size_t i = 0; i < recomputed.numel(); ++i) {
    ASSERT_EQ(recomputed[i], fresh[i]);
  }
}

// Batched execution seeds each frame's scan cache with every channel scan
// the configuration needs; materializing the branches afterwards runs no
// further scans and yields detections identical to per-frame runs.
TEST(BranchBatcherTest, BatchedScansMatchPerFrameRuns) {
  const auto seq = test_sequence(dataset::SceneType::kJunction, 4);
  const std::size_t config_index = engine().baselines().late;

  std::vector<std::unique_ptr<FrameWorkspace>> workspaces;
  std::vector<FrameWorkspace*> group;
  for (const dataset::Frame& frame : seq.frames) {
    workspaces.push_back(std::make_unique<FrameWorkspace>(engine(), frame));
    group.push_back(workspaces.back().get());
  }
  const BranchBatcher batcher(engine());
  batcher.execute(config_index, group);

  const auto& config = engine().config_space()[config_index];
  for (std::size_t f = 0; f < seq.frames.size(); ++f) {
    const std::size_t scans_after_batch =
        workspaces[f]->channel_scans_unique();
    EXPECT_GT(scans_after_batch, 0u);
    for (core::BranchId branch : config.branches) {
      expect_same_detections(workspaces[f]->branch_detections(branch),
                             engine().run_branch(branch, seq.frames[f]));
    }
    // The merges consumed only deposited scans.
    EXPECT_EQ(workspaces[f]->channel_scans_unique(), scans_after_batch);
  }
}

// The batcher honours the unshared mode: every (branch, channel) pair pays
// for its own scan, so the on/off invariance check stays honest even on the
// batched path — while detections remain identical.
TEST(BranchBatcherTest, UnsharedBatchedScansMatchSharedOnes) {
  const auto seq = test_sequence(dataset::SceneType::kSnow, 3);
  // The 7-channel/4-unique ensemble configuration exercises the dedup.
  std::size_t config_index = engine().config_space().size();
  for (const core::ModelConfig& c : engine().config_space()) {
    if (c.name == "E(CL+CR+L)+CL+CR+L+R") config_index = c.index;
  }
  ASSERT_LT(config_index, engine().config_space().size());

  auto run_group = [&](bool share) {
    std::vector<std::unique_ptr<FrameWorkspace>> workspaces;
    std::vector<FrameWorkspace*> group;
    for (const dataset::Frame& frame : seq.frames) {
      workspaces.push_back(
          std::make_unique<FrameWorkspace>(engine(), frame, share));
      group.push_back(workspaces.back().get());
    }
    const BranchBatcher batcher(engine());
    batcher.execute(config_index, group);
    return workspaces;
  };
  auto shared = run_group(true);
  auto unshared = run_group(false);

  const auto& config = engine().config_space()[config_index];
  for (std::size_t f = 0; f < seq.frames.size(); ++f) {
    for (core::BranchId branch : config.branches) {
      expect_same_detections(shared[f]->branch_detections(branch),
                             unshared[f]->branch_detections(branch));
    }
    EXPECT_EQ(shared[f]->channel_scans_requested(), 7u);
    EXPECT_EQ(shared[f]->channel_scans_unique(), 4u);
    EXPECT_EQ(unshared[f]->channel_scans_requested(), 7u);
    EXPECT_EQ(unshared[f]->channel_scans_unique(), 7u);
  }
}

TEST(BranchBatcherTest, DetectBatchMatchesDetect) {
  const auto seq = test_sequence(dataset::SceneType::kFog, 3);
  // An early-fusion branch (multi-channel) and a single-sensor branch.
  for (core::BranchId branch : {core::BranchId::kEarlyCamerasLidar,
                                core::BranchId::kRadar}) {
    const auto& detector = engine().branch_detector(branch);
    std::vector<std::vector<tensor::Tensor>> grids;
    std::vector<const std::vector<tensor::Tensor>*> batch;
    for (const dataset::Frame& frame : seq.frames) {
      grids.push_back(engine().branch_grids(branch, frame));
    }
    for (const auto& g : grids) batch.push_back(&g);
    const auto batched = detector.detect_batch(batch);
    ASSERT_EQ(batched.size(), seq.frames.size());
    for (std::size_t f = 0; f < seq.frames.size(); ++f) {
      expect_same_detections(batched[f], detector.detect(grids[f]));
    }
  }
}

TEST(TensorOpsTest, Conv2dRowsMatchesFullConv) {
  util::Rng rng(123);
  tensor::Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  tensor::Tensor input({2, 11, 9});
  tensor::Tensor weight({3, 2, 3, 3});
  tensor::Tensor bias({3});
  for (auto& v : input.vec()) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto& v : weight.vec()) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto& v : bias.vec()) v = rng.uniform_f(-1.0f, 1.0f);

  const tensor::Tensor full = tensor::conv2d(input, weight, bias, spec);
  tensor::Tensor striped({3, 11, 9});
  // Cover the output with uneven stripes.
  tensor::conv2d_rows(input, weight, bias, spec, 0, 4, striped);
  tensor::conv2d_rows(input, weight, bias, spec, 4, 5, striped);
  tensor::conv2d_rows(input, weight, bias, spec, 5, 11, striped);
  for (std::size_t i = 0; i < full.numel(); ++i) {
    ASSERT_EQ(full[i], striped[i]);
  }
}

TEST(TensorOpsTest, Conv2dBatchMatchesPerItemCalls) {
  util::Rng rng(7);
  tensor::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 4;
  std::vector<tensor::Tensor> inputs(3, tensor::Tensor({1, 8, 8}));
  std::vector<tensor::Tensor> weights(3, tensor::Tensor({4, 1, 3, 3}));
  tensor::Tensor bias({4});
  for (auto& t : inputs) {
    for (auto& v : t.vec()) v = rng.uniform_f(-1.0f, 1.0f);
  }
  for (auto& t : weights) {
    for (auto& v : t.vec()) v = rng.uniform_f(-1.0f, 1.0f);
  }
  std::vector<tensor::Tensor> outputs(3);
  std::vector<tensor::Conv2dBatchItem> items;
  for (std::size_t i = 0; i < 3; ++i) {
    items.push_back({&inputs[i], &weights[i], &bias, &outputs[i]});
  }
  tensor::conv2d_batch(items, spec);
  for (std::size_t i = 0; i < 3; ++i) {
    const tensor::Tensor expected =
        tensor::conv2d(inputs[i], weights[i], bias, spec);
    ASSERT_EQ(outputs[i].shape(), expected.shape());
    for (std::size_t j = 0; j < expected.numel(); ++j) {
      ASSERT_EQ(outputs[i][j], expected[j]);
    }
  }
}

}  // namespace
}  // namespace eco::exec
