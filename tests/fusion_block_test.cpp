#include "fusion/fusion_block.hpp"

#include <gtest/gtest.h>

#include "fusion/coordinate.hpp"

namespace eco::fusion {
namespace {

detect::Detection make_det(detect::Box box, float score,
                           detect::ObjectClass cls = detect::ObjectClass::kCar) {
  detect::Detection d;
  d.box = box;
  d.score = score;
  d.cls = cls;
  return d;
}

TEST(AffineTest, ApplyAndInverseRoundTrip) {
  AffineTransform2d t;
  t.scale_x = 2.0f;
  t.scale_y = 0.5f;
  t.offset_x = 3.0f;
  t.offset_y = -1.0f;
  const detect::Box b{1, 2, 5, 6};
  const detect::Box forward = t.apply(b);
  EXPECT_FLOAT_EQ(forward.x1, 5.0f);
  EXPECT_FLOAT_EQ(forward.y1, 0.0f);
  const detect::Box back = t.inverse().apply(forward);
  EXPECT_NEAR(back.x1, b.x1, 1e-5f);
  EXPECT_NEAR(back.y2, b.y2, 1e-5f);
}

TEST(AffineTest, NegativeScaleKeepsCornersOrdered) {
  AffineTransform2d t;
  t.scale_x = -1.0f;
  const detect::Box b{1, 1, 3, 3};
  const detect::Box out = t.apply(b);
  EXPECT_LT(out.x1, out.x2);
}

TEST(AffineTest, ComposeMatchesSequentialApplication) {
  AffineTransform2d a, b;
  a.scale_x = 2.0f;
  a.offset_x = 1.0f;
  b.scale_x = 3.0f;
  b.offset_x = -2.0f;
  const detect::Box box{1, 0, 2, 1};
  const detect::Box sequential = a.apply(b.apply(box));
  const detect::Box composed = compose(a, b).apply(box);
  EXPECT_NEAR(sequential.x1, composed.x1, 1e-5f);
  EXPECT_NEAR(sequential.x2, composed.x2, 1e-5f);
}

TEST(AffineTest, IdentityIsNoOp) {
  const detect::Box b{1, 2, 3, 4};
  const detect::Box out = AffineTransform2d::identity().apply(b);
  EXPECT_FLOAT_EQ(out.x1, b.x1);
  EXPECT_FLOAT_EQ(out.y2, b.y2);
}

TEST(FusionBlockTest, MergesAgreeingBranches) {
  FusionBlock block;
  const auto fused = block.fuse({{make_det({0, 0, 4, 4}, 0.8f)},
                                 {make_det({0.4f, 0, 4.4f, 4}, 0.7f)}});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_GT(fused[0].score, 0.5f);
}

TEST(FusionBlockTest, AppliesCoordinateTransforms) {
  FusionBlock block;
  AffineTransform2d shift;
  shift.offset_x = -10.0f;
  // Branch 2's detections are in a shifted frame; after transform they
  // coincide with branch 1's.
  const auto fused = block.fuse(
      {{make_det({0, 0, 4, 4}, 0.8f)}, {make_det({10, 0, 14, 4}, 0.8f)}},
      {AffineTransform2d::identity(), shift});
  EXPECT_EQ(fused.size(), 1u);
}

TEST(FusionBlockTest, TransformArityMismatchThrows) {
  FusionBlock block;
  EXPECT_THROW(
      (void)block.fuse({{make_det({0, 0, 1, 1}, 0.5f)}},
                       {AffineTransform2d{}, AffineTransform2d{}}),
      std::invalid_argument);
}

TEST(FusionBlockTest, MinScoreFiltersOutput) {
  FusionBlockConfig config;
  config.min_score = 0.5f;
  FusionBlock block(config);
  const auto fused = block.fuse({{make_det({0, 0, 4, 4}, 0.3f)}});
  EXPECT_TRUE(fused.empty());
}

TEST(FusionBlockTest, NmsMergeAlternativeKeepsBestBox) {
  FusionBlockConfig config;
  config.algorithm = FusionAlgorithm::kNmsMerge;
  FusionBlock block(config);
  const auto fused = block.fuse({{make_det({0, 0, 4, 4}, 0.9f)},
                                 {make_det({0.2f, 0, 4.2f, 4}, 0.6f)}});
  ASSERT_EQ(fused.size(), 1u);
  // NMS keeps the original best box rather than averaging.
  EXPECT_FLOAT_EQ(fused[0].box.x1, 0.0f);
  EXPECT_FLOAT_EQ(fused[0].score, 0.9f);
}

TEST(FusionBlockTest, CrossClassDuplicatesRemoved) {
  FusionBlock block;
  // Two branches disagree on the label of the same object.
  const auto fused =
      block.fuse({{make_det({0, 0, 4, 4}, 0.8f, detect::ObjectClass::kCar)},
                  {make_det({0, 0, 4, 4}, 0.7f, detect::ObjectClass::kVan)}});
  EXPECT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].cls, detect::ObjectClass::kCar);
}

TEST(FusionBlockTest, EmptyInputsSafe) {
  FusionBlock block;
  EXPECT_TRUE(block.fuse({}).empty());
  EXPECT_TRUE(block.fuse({{}, {}, {}}).empty());
}

}  // namespace
}  // namespace eco::fusion
