#include "core/config_space.hpp"

#include <gtest/gtest.h>

#include <set>

namespace eco::core {
namespace {

TEST(BranchTest, InputsMatchArchitecture) {
  EXPECT_EQ(branch_inputs(BranchId::kCameraLeft).size(), 1u);
  EXPECT_EQ(branch_inputs(BranchId::kEarlyCameras).size(), 2u);
  EXPECT_EQ(branch_inputs(BranchId::kEarlyCamerasLidar).size(), 3u);
  EXPECT_EQ(branch_inputs(BranchId::kEarlyLidarRadar).size(), 2u);
  EXPECT_STREQ(branch_name(BranchId::kEarlyCamerasLidar), "E(CL+CR+L)");
}

TEST(ConfigSpaceTest, FifteenConfigurationsWithUniqueNames) {
  const auto space = build_config_space();
  EXPECT_EQ(space.size(), 15u);
  std::set<std::string> names;
  for (const auto& config : space) {
    EXPECT_FALSE(config.branches.empty());
    names.insert(config.name);
    EXPECT_EQ(config.index, static_cast<std::size_t>(&config - space.data()));
  }
  EXPECT_EQ(names.size(), space.size());
}

TEST(ConfigSpaceTest, BaselineIndicesResolve) {
  const auto space = build_config_space();
  const BaselineIndices idx = baseline_indices(space);
  EXPECT_EQ(space[idx.camera_left].name, "CL");
  EXPECT_EQ(space[idx.camera_right].name, "CR");
  EXPECT_EQ(space[idx.lidar].name, "L");
  EXPECT_EQ(space[idx.radar].name, "R");
  EXPECT_EQ(space[idx.early].name, "E(CL+CR+L)");
  EXPECT_EQ(space[idx.late].name, "CL+CR+L+R");
  EXPECT_EQ(space[idx.late].branches.size(), 4u);
}

TEST(ConfigSpaceTest, SensorsUsedDeduplicates) {
  const auto space = build_config_space();
  const BaselineIndices idx = baseline_indices(space);
  // Late fusion uses all four logical sensors.
  EXPECT_EQ(space[idx.late].sensors_used().size(), 4u);
  // E(CL+CR+L)+R hybrid also covers all four, without duplication.
  for (const auto& config : space) {
    const auto sensors = config.sensors_used();
    std::set<dataset::SensorKind> unique(sensors.begin(), sensors.end());
    EXPECT_EQ(unique.size(), sensors.size()) << config.name;
  }
}

TEST(ConfigSpaceTest, SensorUsageMapsToPhysicalSensors) {
  const auto space = build_config_space();
  const BaselineIndices idx = baseline_indices(space);
  const auto cam_usage = space[idx.camera_left].sensor_usage();
  EXPECT_TRUE(cam_usage.zed_camera);
  EXPECT_FALSE(cam_usage.lidar);
  EXPECT_FALSE(cam_usage.radar);
  const auto late_usage = space[idx.late].sensor_usage();
  EXPECT_TRUE(late_usage.zed_camera);
  EXPECT_TRUE(late_usage.lidar);
  EXPECT_TRUE(late_usage.radar);
}

TEST(ExecutionProfileTest, StaticAccountingCountsUsedStems) {
  const auto space = build_config_space();
  const BaselineIndices idx = baseline_indices(space);
  const auto profile = space[idx.camera_left].execution_profile(
      /*adaptive=*/false, energy::GateComplexity::kNone);
  EXPECT_EQ(profile.stems_run, 1u);
  EXPECT_EQ(profile.stem_projections, 0u);
  EXPECT_EQ(profile.branches.size(), 1u);
}

TEST(ExecutionProfileTest, AdaptiveAccountingRunsAllStems) {
  const auto space = build_config_space();
  const BaselineIndices idx = baseline_indices(space);
  const auto profile = space[idx.camera_left].execution_profile(
      /*adaptive=*/true, energy::GateComplexity::kAttention);
  EXPECT_EQ(profile.stems_run, dataset::kNumSensors);
  EXPECT_EQ(profile.stem_projections, 2u);  // lidar + radar always projected
  EXPECT_EQ(profile.gate, energy::GateComplexity::kAttention);
}

TEST(ExecutionProfileTest, ProjectionsCountNonCameraInputs) {
  const auto space = build_config_space();
  const BaselineIndices idx = baseline_indices(space);
  const auto profile = space[idx.late].execution_profile(
      /*adaptive=*/false, energy::GateComplexity::kNone);
  EXPECT_EQ(profile.stems_run, 4u);
  EXPECT_EQ(profile.stem_projections, 2u);
  ASSERT_EQ(profile.branches.size(), 4u);
  // Lidar and radar single-sensor branch runs carry a projected input.
  std::size_t projected = 0;
  for (const auto& run : profile.branches) projected += run.projected_inputs;
  EXPECT_EQ(projected, 2u);
}

TEST(ConfigSpaceTest, FullEnsembleIsLargest) {
  const auto space = build_config_space();
  std::size_t max_branches = 0;
  for (const auto& config : space) {
    max_branches = std::max(max_branches, config.branches.size());
  }
  EXPECT_EQ(max_branches, 5u);  // E(CL+CR+L)+CL+CR+L+R
}

TEST(ConfigSpaceTest, SpansNoneEarlyLateHybrid) {
  const auto space = build_config_space();
  bool has_single = false, has_early_only = false, has_late = false,
       has_hybrid = false;
  for (const auto& config : space) {
    const bool any_early =
        std::any_of(config.branches.begin(), config.branches.end(),
                    [](BranchId b) {
                      return branch_inputs(b).size() > 1;
                    });
    if (config.branches.size() == 1 && !any_early) has_single = true;
    if (config.branches.size() == 1 && any_early) has_early_only = true;
    if (config.branches.size() > 1 && !any_early) has_late = true;
    if (config.branches.size() > 1 && any_early) has_hybrid = true;
  }
  EXPECT_TRUE(has_single);
  EXPECT_TRUE(has_early_only);
  EXPECT_TRUE(has_late);
  EXPECT_TRUE(has_hybrid);
}

}  // namespace
}  // namespace eco::core
