#include "fusion/wbf.hpp"

#include <gtest/gtest.h>

namespace eco::fusion {
namespace {

detect::Detection make_det(detect::Box box, float score,
                           detect::ObjectClass cls = detect::ObjectClass::kCar) {
  detect::Detection d;
  d.box = box;
  d.score = score;
  d.cls = cls;
  return d;
}

TEST(WbfTest, SingleModelPassesThrough) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused =
      weighted_boxes_fusion({{make_det({0, 0, 4, 4}, 0.8f)}}, config);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_FLOAT_EQ(fused[0].score, 0.8f);
}

TEST(WbfTest, OverlappingBoxesMergeToWeightedAverage) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  // Two models agree on one object, slightly offset boxes.
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 4, 4}, 0.6f)}, {make_det({1, 0, 5, 4}, 0.6f)}},
      config);
  ASSERT_EQ(fused.size(), 1u);
  // Equal scores -> plain average of coordinates.
  EXPECT_NEAR(fused[0].box.x1, 0.5f, 1e-5f);
  EXPECT_NEAR(fused[0].box.x2, 4.5f, 1e-5f);
}

TEST(WbfTest, HigherScoreDominatesAverage) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 4, 4}, 0.9f)}, {make_det({1, 0, 5, 4}, 0.1f)}},
      config);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_LT(fused[0].box.x1, 0.25f);  // pulled toward the confident box
}

TEST(WbfTest, DifferentClassesDoNotCluster) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 4, 4}, 0.8f, detect::ObjectClass::kCar)},
       {make_det({0, 0, 4, 4}, 0.7f, detect::ObjectClass::kVan)}},
      config);
  EXPECT_EQ(fused.size(), 2u);
}

TEST(WbfTest, DisjointBoxesStaySeparate) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 4, 4}, 0.8f)}, {make_det({20, 20, 24, 24}, 0.7f)}},
      config);
  EXPECT_EQ(fused.size(), 2u);
}

TEST(WbfTest, SkipThresholdDropsWeakBoxes) {
  WbfConfig config;
  config.skip_box_threshold = 0.5f;
  const auto fused =
      weighted_boxes_fusion({{make_det({0, 0, 4, 4}, 0.3f)}}, config);
  EXPECT_TRUE(fused.empty());
}

TEST(WbfTest, AgreementRescalingSuppressesLoneBoxes) {
  WbfConfig config;
  config.rescale_by_model_count = true;
  // 3 models: one object seen by all, one clutter box seen by one.
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 4, 4}, 0.7f), make_det({20, 20, 24, 24}, 0.7f)},
       {make_det({0, 0, 4, 4}, 0.7f)},
       {make_det({0, 0, 4, 4}, 0.7f)}},
      config);
  ASSERT_EQ(fused.size(), 2u);
  // Output is score-sorted: confirmed object first.
  EXPECT_GT(fused[0].score, fused[1].score);
  EXPECT_NEAR(fused[0].score, 0.7f, 1e-4f);  // full agreement keeps score
  EXPECT_LT(fused[1].score, 0.4f);           // lone box attenuated
}

TEST(WbfTest, ClassScoresAveragedAcrossCluster) {
  detect::Detection a = make_det({0, 0, 4, 4}, 0.6f);
  a.class_scores = {0.9f, 0.1f};
  detect::Detection b = make_det({0, 0, 4, 4}, 0.6f);
  b.class_scores = {0.4f, 0.6f};
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused = weighted_boxes_fusion({{a}, {b}}, config);
  ASSERT_EQ(fused.size(), 1u);
  ASSERT_EQ(fused[0].class_scores.size(), 2u);
  EXPECT_GT(fused[0].class_scores[0], fused[0].class_scores[1]);
  EXPECT_NEAR(fused[0].class_scores[0] + fused[0].class_scores[1], 1.0f,
              1e-5f);
  EXPECT_EQ(fused[0].cls, detect::ObjectClass::kCar);
}

TEST(WbfTest, ModelWeightsScaleScores) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 4, 4}, 0.8f)}}, config, {0.5f});
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_FLOAT_EQ(fused[0].score, 0.4f);
}

TEST(WbfTest, ModelWeightArityMismatchThrows) {
  EXPECT_THROW(
      (void)weighted_boxes_fusion({{make_det({0, 0, 1, 1}, 0.5f)}}, {},
                                  {0.5f, 0.5f}),
      std::invalid_argument);
}

TEST(WbfTest, OutputSortedByScore) {
  WbfConfig config;
  config.rescale_by_model_count = false;
  const auto fused = weighted_boxes_fusion(
      {{make_det({0, 0, 2, 2}, 0.3f), make_det({10, 10, 12, 12}, 0.9f)}},
      config);
  ASSERT_EQ(fused.size(), 2u);
  EXPECT_GE(fused[0].score, fused[1].score);
}

TEST(WbfTest, EmptyInputProducesEmptyOutput) {
  EXPECT_TRUE(weighted_boxes_fusion({}).empty());
  EXPECT_TRUE(weighted_boxes_fusion({{}, {}}).empty());
}

}  // namespace
}  // namespace eco::fusion
