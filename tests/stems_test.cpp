#include "core/stems.hpp"

#include <gtest/gtest.h>

#include "dataset/generator.hpp"

namespace eco::core {
namespace {

dataset::Frame test_frame(dataset::SceneType scene = dataset::SceneType::kCity) {
  dataset::DatasetConfig config;
  return dataset::generate_frame(scene, config, 3);
}

TEST(StemBankTest, FeatureShapeHalvesSpatialDims) {
  const StemBank stems;
  const dataset::Frame frame = test_frame();
  const auto features =
      stems.features(dataset::SensorKind::kCameraLeft,
                     frame.grid(dataset::SensorKind::kCameraLeft));
  EXPECT_EQ(features.shape(),
            (tensor::Shape{stems.out_channels(), 24, 24}));
}

TEST(StemBankTest, GateFeaturesConcatenateAllSensors) {
  const StemBank stems;
  const dataset::Frame frame = test_frame();
  const auto features = stems.gate_features(frame);
  EXPECT_EQ(features.shape(), (tensor::Shape{stems.gate_channels(), 24, 24}));
  EXPECT_EQ(stems.gate_channels(), stems.out_channels() * 4);
}

TEST(StemBankTest, DeterministicAcrossInstances) {
  const StemBank a, b;
  const dataset::Frame frame = test_frame();
  EXPECT_TRUE(a.gate_features(frame).equals(b.gate_features(frame)));
}

TEST(StemBankTest, FeaturesAreNonNegative) {
  // Stems end in ReLU + max-pool.
  const StemBank stems;
  const dataset::Frame frame = test_frame(dataset::SceneType::kSnow);
  const auto features = stems.gate_features(frame);
  EXPECT_GE(features.min(), 0.0f);
}

TEST(StemBankTest, FeaturesCarryContextSignal) {
  // A fog frame and a city frame must produce distinguishable feature
  // statistics — otherwise the gate has nothing to learn from.
  const StemBank stems;
  dataset::DatasetConfig config;
  const auto city = dataset::generate_frame(dataset::SceneType::kCity, config, 10);
  const auto fog = dataset::generate_frame(dataset::SceneType::kFog, config, 11);
  const auto f_city = stems.gate_features(city);
  const auto f_fog = stems.gate_features(fog);
  EXPECT_GT(std::abs(f_city.mean() - f_fog.mean()) /
                std::max(1e-6f, f_city.mean()),
            0.02f);
}

TEST(StemBankTest, IdentityChannelTracksInput) {
  // Channel 0 of each stem is the identity kernel (after ReLU+pool), so a
  // brighter grid yields larger channel-0 features.
  const StemBank stems;
  tensor::Tensor dim({1, 48, 48});
  dim.fill(0.1f);
  tensor::Tensor bright({1, 48, 48});
  bright.fill(0.9f);
  const auto f_dim = stems.features(dataset::SensorKind::kLidar, dim);
  const auto f_bright = stems.features(dataset::SensorKind::kLidar, bright);
  double dim_sum = 0.0, bright_sum = 0.0;
  for (std::size_t i = 0; i < 24 * 24; ++i) {
    dim_sum += f_dim[i];
    bright_sum += f_bright[i];
  }
  EXPECT_GT(bright_sum, dim_sum * 2);
}

}  // namespace
}  // namespace eco::core
