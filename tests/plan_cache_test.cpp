// The process-wide plan cache: build-once semantics, LRU eviction,
// hit/miss accounting, and the scan-plan sharing that motivates it — every
// scratch in the process must alias the same immutable ScanPlan object for
// the same (extent, config) key.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>

#include "detect/rpn.hpp"
#include "detect/scan_scratch.hpp"
#include "tensor/plan_cache.hpp"

namespace eco {
namespace {

struct TestKey {
  int id = 0;
  friend bool operator==(const TestKey&, const TestKey&) = default;
};

struct TestPlan {
  int id = 0;
  std::string payload;
};

TestPlan build_plan(const TestKey& key) {
  return TestPlan{key.id, "plan-" + std::to_string(key.id)};
}

TEST(PlanCacheTest, BuildsOncePerKeyAndSharesTheInstance) {
  tensor::PlanCache<TestKey, TestPlan> cache(4);
  int builds = 0;
  const auto counted = [&builds](const TestKey& key) {
    ++builds;
    return build_plan(key);
  };
  const auto first = cache.get_or_build(TestKey{7}, counted);
  const auto second = cache.get_or_build(TestKey{7}, counted);
  EXPECT_EQ(builds, 1);
  // Identity, not just equality: both callers alias one immutable object.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(second->payload, "plan-7");

  const auto totals = cache.totals();
  EXPECT_EQ(totals.hits, 1u);
  EXPECT_EQ(totals.misses, 1u);
  EXPECT_EQ(totals.plans, 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsedAtCapacity) {
  tensor::PlanCache<TestKey, TestPlan> cache(2);
  int builds = 0;
  const auto counted = [&builds](const TestKey& key) {
    ++builds;
    return build_plan(key);
  };
  (void)cache.get_or_build(TestKey{1}, counted);
  (void)cache.get_or_build(TestKey{2}, counted);
  // Touch 1 so 2 becomes the LRU entry, then insert 3 to evict it.
  (void)cache.get_or_build(TestKey{1}, counted);
  (void)cache.get_or_build(TestKey{3}, counted);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(builds, 3);
  // 1 and 3 are resident (no rebuild); 2 was evicted (rebuilds).
  (void)cache.get_or_build(TestKey{1}, counted);
  (void)cache.get_or_build(TestKey{3}, counted);
  EXPECT_EQ(builds, 3);
  (void)cache.get_or_build(TestKey{2}, counted);
  EXPECT_EQ(builds, 4);
}

TEST(PlanCacheTest, EvictedPlansSurviveWhileReferenced) {
  tensor::PlanCache<TestKey, TestPlan> cache(1);
  const auto pinned = cache.get_or_build(TestKey{1}, build_plan);
  (void)cache.get_or_build(TestKey{2}, build_plan);  // evicts key 1
  EXPECT_EQ(cache.size(), 1u);
  // The shared_ptr keeps the evicted plan alive for its holder.
  EXPECT_EQ(pinned->payload, "plan-1");
}

TEST(PlanCacheTest, ThreadLocalCountersTrackHitsAndMisses) {
  tensor::PlanCache<TestKey, TestPlan> cache(4);
  const auto hits_before = tensor::plan_cache_hit_count();
  const auto misses_before = tensor::plan_cache_miss_count();
  (void)cache.get_or_build(TestKey{10}, build_plan);
  (void)cache.get_or_build(TestKey{10}, build_plan);
  (void)cache.get_or_build(TestKey{11}, build_plan);
  EXPECT_EQ(tensor::plan_cache_hit_count() - hits_before, 1u);
  EXPECT_EQ(tensor::plan_cache_miss_count() - misses_before, 2u);
}

TEST(ScanPlanCacheTest, ScratchesShareOnePlanInstancePerKey) {
  detect::RpnConfig config;
  config.backend = tensor::Backend::kFast;
  detect::ScanScratch a, b;
  const detect::ScanPlan& plan_a = a.plan_for(48, 48, config);
  const detect::ScanPlan& plan_b = b.plan_for(48, 48, config);
  // Same key from two scratches -> the identical shared object, not a
  // per-scratch copy (the whole point of the process-wide cache).
  EXPECT_EQ(&plan_a, &plan_b);
  EXPECT_FALSE(plan_a.anchors.empty());
  EXPECT_EQ(plan_a.anchors.size(), plan_a.geometry.size());

  // A different backend is a different key: backends run different code
  // paths, so plans must never alias across them.
  detect::RpnConfig simd_config = config;
  simd_config.backend = tensor::Backend::kSimd;
  const detect::ScanPlan& plan_simd = a.plan_for(48, 48, simd_config);
  EXPECT_NE(&plan_simd, &plan_b);

  // The scratch-local memo: repeating the last key returns the pinned plan
  // without consulting the global cache (no hit/miss movement).
  const auto hits_before = tensor::plan_cache_hit_count();
  const auto misses_before = tensor::plan_cache_miss_count();
  const detect::ScanPlan& again = a.plan_for(48, 48, simd_config);
  EXPECT_EQ(&again, &plan_simd);
  EXPECT_EQ(tensor::plan_cache_hit_count(), hits_before);
  EXPECT_EQ(tensor::plan_cache_miss_count(), misses_before);
}

TEST(ScanPlanCacheTest, PlanMatchesFreshBuild) {
  detect::ScanPlanKey key;
  key.height = 48;
  key.width = 48;
  const detect::ScanPlan fresh = detect::build_scan_plan(key);
  detect::ScanScratch scratch;
  const detect::ScanPlan& cached = scratch.plan_for(48, 48, key.config);
  ASSERT_EQ(cached.anchors.size(), fresh.anchors.size());
  ASSERT_EQ(cached.geometry.size(), fresh.geometry.size());
  for (std::size_t i = 0; i < fresh.anchors.size(); ++i) {
    EXPECT_EQ(cached.anchors[i].x1, fresh.anchors[i].x1);
    EXPECT_EQ(cached.anchors[i].y1, fresh.anchors[i].y1);
    EXPECT_EQ(cached.anchors[i].x2, fresh.anchors[i].x2);
    EXPECT_EQ(cached.anchors[i].y2, fresh.anchors[i].y2);
    EXPECT_EQ(cached.geometry[i].inner00, fresh.geometry[i].inner00);
    EXPECT_EQ(cached.geometry[i].ring11, fresh.geometry[i].ring11);
    EXPECT_EQ(cached.geometry[i].inner_area, fresh.geometry[i].inner_area);
    EXPECT_EQ(cached.geometry[i].ring_area, fresh.geometry[i].ring_area);
  }
}

TEST(ScanPlanCacheTest, StatsCountResidentPlans) {
  // Force at least one plan into the process-wide cache, then read stats.
  detect::ScanScratch scratch;
  (void)scratch.plan_for(48, 48, detect::RpnConfig{});
  const detect::ScanPlanCacheStats stats = detect::scan_plan_cache_stats();
  EXPECT_GT(stats.plans, 0u);
  EXPECT_GT(stats.misses, 0u);  // at least the builds this test forced
}

}  // namespace
}  // namespace eco
