#include "core/joint_opt.hpp"

#include <gtest/gtest.h>

namespace eco::core {
namespace {

TEST(BestLossTest, FindsMinimumAndBreaksTiesLow) {
  EXPECT_EQ(best_loss_index({3.0f, 1.0f, 2.0f}), 1u);
  EXPECT_EQ(best_loss_index({1.0f, 1.0f}), 0u);
  EXPECT_EQ(best_loss_index({5.0f}), 0u);
  EXPECT_THROW((void)best_loss_index({}), std::invalid_argument);
}

TEST(CandidateSetTest, GammaZeroKeepsOnlyBest) {
  // §3.3: "if maximum performance is desired, then γ can be set to 0, so
  // only φ' is in Φ*".
  const auto candidates = candidate_set({1.0f, 0.5f, 2.0f}, 0.0f);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], 1u);
}

TEST(CandidateSetTest, GammaZeroKeepsExactTies) {
  const auto candidates = candidate_set({0.5f, 0.5f, 2.0f}, 0.0f);
  EXPECT_EQ(candidates.size(), 2u);
}

TEST(CandidateSetTest, GammaBandAdmitsCloseConfigs) {
  const auto candidates = candidate_set({1.0f, 0.5f, 0.9f, 2.0f}, 0.5f);
  ASSERT_EQ(candidates.size(), 3u);  // 0.5, 0.9, 1.0 within 0.5 of best
  EXPECT_EQ(candidates[0], 0u);
  EXPECT_EQ(candidates[1], 1u);
  EXPECT_EQ(candidates[2], 2u);
}

TEST(CandidateSetTest, LargeGammaAdmitsEverything) {
  const auto candidates = candidate_set({1.0f, 5.0f, 9.0f}, 100.0f);
  EXPECT_EQ(candidates.size(), 3u);
}

TEST(CandidateSetTest, NegativePredictionsHandled) {
  // Regret-trained gates can emit negative estimates; Φ* must stay sane.
  const auto candidates = candidate_set({-1.0f, -0.8f, 0.4f}, 0.5f);
  ASSERT_GE(candidates.size(), 2u);
  EXPECT_EQ(candidates[0], 0u);
}

TEST(JointLossTest, Equation8Blend) {
  // L_joint = (1-λ)L + λE.
  EXPECT_FLOAT_EQ(joint_loss(2.0f, 4.0f, 0.0f), 2.0f);
  EXPECT_FLOAT_EQ(joint_loss(2.0f, 4.0f, 1.0f), 4.0f);
  EXPECT_FLOAT_EQ(joint_loss(2.0f, 4.0f, 0.5f), 3.0f);
  EXPECT_FLOAT_EQ(joint_loss(1.0f, 3.0f, 0.01f), 0.99f + 0.03f);
}

TEST(SelectTest, LambdaZeroPicksLowestLoss) {
  JointOptParams params;
  params.gamma = 10.0f;  // everything is a candidate
  params.lambda_energy = 0.0f;
  EXPECT_EQ(select_configuration({3.0f, 1.0f, 2.0f}, {1.0f, 9.0f, 0.1f},
                                 params),
            1u);
}

TEST(SelectTest, LambdaOnePicksLowestEnergyCandidate) {
  JointOptParams params;
  params.gamma = 10.0f;
  params.lambda_energy = 1.0f;
  EXPECT_EQ(select_configuration({3.0f, 1.0f, 2.0f}, {1.0f, 9.0f, 0.1f},
                                 params),
            2u);
}

TEST(SelectTest, GammaRestrictsEnergyShopping) {
  JointOptParams params;
  params.gamma = 0.1f;  // only the best-loss config is a candidate
  params.lambda_energy = 1.0f;
  // Cheapest config (index 2) is outside the band; must pick index 1.
  EXPECT_EQ(select_configuration({3.0f, 1.0f, 2.0f}, {1.0f, 9.0f, 0.1f},
                                 params),
            1u);
}

TEST(SelectTest, IntermediateLambdaTradesOff) {
  JointOptParams params;
  params.gamma = 1.0f;
  params.lambda_energy = 0.5f;
  // Candidates: losses {1.0, 1.5}; energies {4.0, 1.0}.
  // Joint: 0.5*1.0+0.5*4.0 = 2.5 vs 0.5*1.5+0.5*1.0 = 1.25 -> pick 1.
  EXPECT_EQ(select_configuration({1.0f, 1.5f, 9.0f}, {4.0f, 1.0f, 0.0f},
                                 params),
            1u);
}

TEST(SelectTest, ArityMismatchThrows) {
  JointOptParams params;
  EXPECT_THROW(
      (void)select_configuration({1.0f, 2.0f}, {1.0f}, params),
      std::invalid_argument);
}

// Property: the selected configuration is always inside the candidate set,
// and at λ=0 it is always the argmin loss.
class SelectSweep : public ::testing::TestWithParam<float> {};

TEST_P(SelectSweep, SelectionAlwaysWithinCandidates) {
  const float gamma = GetParam();
  const std::vector<float> losses = {2.0f, 0.8f, 1.1f, 3.5f, 0.9f};
  const std::vector<float> energies = {1.0f, 3.9f, 1.4f, 0.9f, 2.0f};
  for (float lambda : {0.0f, 0.01f, 0.1f, 0.5f, 1.0f}) {
    JointOptParams params;
    params.gamma = gamma;
    params.lambda_energy = lambda;
    const std::size_t chosen = select_configuration(losses, energies, params);
    const auto candidates = candidate_set(losses, gamma);
    EXPECT_NE(std::find(candidates.begin(), candidates.end(), chosen),
              candidates.end());
    if (lambda == 0.0f) {
      EXPECT_EQ(chosen, best_loss_index(losses));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gammas, SelectSweep,
                         ::testing::Values(0.0f, 0.1f, 0.3f, 0.5f, 1.0f,
                                           5.0f));

}  // namespace
}  // namespace eco::core
