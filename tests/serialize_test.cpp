#include "tensor/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "gating/learned_gate.hpp"
#include "util/rng.hpp"

namespace eco::tensor {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(SerializeTest, RoundTripPreservesValues) {
  util::Rng rng(3);
  Linear a(4, 3, rng), b(4, 3, rng);
  std::vector<Param*> pa, pb;
  a.collect_params(pa);
  b.collect_params(pb);
  ASSERT_FALSE(pa[0]->value.allclose(pb[0]->value));  // different init

  const std::string path = temp_path("eco_serialize_roundtrip.bin");
  ASSERT_TRUE(save_params(pa, path));
  ASSERT_TRUE(load_params(pb, path));
  EXPECT_TRUE(pa[0]->value.allclose(pb[0]->value));
  EXPECT_TRUE(pa[1]->value.allclose(pb[1]->value));
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  util::Rng rng(4);
  Linear a(4, 3, rng);
  Linear c(5, 3, rng);  // different in_features
  std::vector<Param*> pa, pc;
  a.collect_params(pa);
  c.collect_params(pc);
  const std::string path = temp_path("eco_serialize_mismatch.bin");
  ASSERT_TRUE(save_params(pa, path));
  EXPECT_FALSE(load_params(pc, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  util::Rng rng(5);
  Linear a(2, 2, rng);
  std::vector<Param*> pa;
  a.collect_params(pa);
  EXPECT_FALSE(load_params(pa, "/nonexistent/dir/weights.bin"));
}

TEST(SerializeTest, CorruptMagicFails) {
  const std::string path = temp_path("eco_serialize_corrupt.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT_A_WEIGHT_FILE", f);
    std::fclose(f);
  }
  util::Rng rng(6);
  Linear a(2, 2, rng);
  std::vector<Param*> pa;
  a.collect_params(pa);
  EXPECT_FALSE(load_params(pa, path));
  std::remove(path.c_str());
}

TEST(SerializeTest, GateCheckpointRoundTrip) {
  gating::LearnedGateConfig config;
  config.in_channels = 8;
  config.in_height = 8;
  config.in_width = 8;
  config.num_configs = 5;
  gating::LearnedGate gate_a(config);
  config.seed = 999;  // different init
  gating::LearnedGate gate_b(config);

  const std::string path = temp_path("eco_gate_ckpt.bin");
  ASSERT_TRUE(save_params(gate_a.parameters(), path));
  ASSERT_TRUE(load_params(gate_b.parameters(), path));

  // Same weights -> same predictions.
  Tensor features({8, 8, 8});
  util::Rng rng(7);
  for (auto& v : features.vec()) v = rng.uniform_f(0.0f, 1.0f);
  EXPECT_TRUE(gate_a.forward(features).allclose(gate_b.forward(features)));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eco::tensor
