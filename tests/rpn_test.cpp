#include "detect/rpn.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eco::detect {
namespace {

tensor::Tensor grid_with_rect(std::size_t size, Box rect, float amplitude) {
  tensor::Tensor grid({1, size, size});
  for (std::size_t y = static_cast<std::size_t>(rect.y1);
       y < static_cast<std::size_t>(rect.y2); ++y) {
    for (std::size_t x = static_cast<std::size_t>(rect.x1);
         x < static_cast<std::size_t>(rect.x2); ++x) {
      grid.at(0, y, x) = amplitude;
    }
  }
  return grid;
}

TEST(IntegralImageTest, BoxSumMatchesBruteForce) {
  util::Rng rng(5);
  tensor::Tensor grid({1, 16, 20});
  for (auto& v : grid.vec()) v = rng.uniform_f(0.0f, 1.0f);
  const IntegralImage integral(grid);
  for (int trial = 0; trial < 100; ++trial) {
    Box b;
    b.x1 = rng.uniform_f(0.0f, 18.0f);
    b.y1 = rng.uniform_f(0.0f, 14.0f);
    b.x2 = b.x1 + rng.uniform_f(0.5f, 6.0f);
    b.y2 = b.y1 + rng.uniform_f(0.5f, 6.0f);
    double brute = 0.0;
    const auto x0 = static_cast<std::size_t>(std::max(0.0f, b.x1));
    const auto y0 = static_cast<std::size_t>(std::max(0.0f, b.y1));
    const auto x1 = static_cast<std::size_t>(std::clamp(b.x2, 0.0f, 20.0f));
    const auto y1 = static_cast<std::size_t>(std::clamp(b.y2, 0.0f, 16.0f));
    for (std::size_t y = y0; y < y1; ++y) {
      for (std::size_t x = x0; x < x1; ++x) brute += grid.at(0, y, x);
    }
    EXPECT_NEAR(integral.box_sum(b), brute, 1e-3)
        << "box " << b.to_string();
  }
}

TEST(IntegralImageTest, EmptyBoxIsZero) {
  const IntegralImage integral(tensor::Tensor({1, 4, 4}));
  EXPECT_EQ(integral.box_sum(Box{2, 2, 2, 3}), 0.0);
  EXPECT_EQ(integral.box_mean(Box{5, 5, 9, 9}), 0.0);  // outside
}

TEST(IntegralImageTest, AcceptsTwoDimensionalInput) {
  tensor::Tensor grid({3, 4});
  grid.fill(2.0f);
  const IntegralImage integral(grid);
  EXPECT_NEAR(integral.box_sum(Box{0, 0, 4, 3}), 24.0, 1e-6);
  EXPECT_EQ(integral.height(), 3u);
  EXPECT_EQ(integral.width(), 4u);
}

TEST(BoxBlurTest, PreservesConstantField) {
  tensor::Tensor grid({1, 6, 6});
  grid.fill(0.7f);
  const tensor::Tensor blurred = box_blur3(grid);
  for (std::size_t i = 0; i < blurred.numel(); ++i) {
    EXPECT_NEAR(blurred[i], 0.7f, 1e-5f);
  }
}

TEST(BoxBlurTest, SpreadsImpulse) {
  tensor::Tensor grid({1, 5, 5});
  grid.at(0, 2, 2) = 9.0f;
  const tensor::Tensor blurred = box_blur3(grid);
  EXPECT_NEAR(blurred.at(0, 2, 2), 1.0f, 1e-5f);
  EXPECT_NEAR(blurred.at(0, 1, 1), 1.0f, 1e-5f);
  EXPECT_NEAR(blurred.at(0, 0, 0), 0.0f, 1e-5f);
}

TEST(RpnTest, ProposesOnBrightObject) {
  const Box rect{10, 10, 16, 14};
  const tensor::Tensor grid = grid_with_rect(32, rect, 0.6f);
  const Rpn rpn;
  const auto proposals = rpn.propose(grid);
  ASSERT_FALSE(proposals.empty());
  float best = 0.0f;
  for (const Proposal& p : proposals) best = std::max(best, iou(p.box, rect));
  EXPECT_GT(best, 0.45f);
  for (const Proposal& p : proposals) {
    EXPECT_GE(p.objectness, 0.0f);
    EXPECT_LE(p.objectness, 1.0f);
  }
}

TEST(RpnTest, SilentOnEmptyGrid) {
  const Rpn rpn;
  EXPECT_TRUE(rpn.propose(tensor::Tensor({1, 32, 32})).empty());
}

TEST(RpnTest, RespectsTopK) {
  RpnConfig config;
  config.top_k = 3;
  const Rpn rpn(config);
  tensor::Tensor grid({1, 32, 32});
  // Many bright objects.
  for (int i = 0; i < 5; ++i) {
    const float x = 2.0f + 6.0f * static_cast<float>(i);
    for (std::size_t y = 4; y < 8; ++y) {
      for (std::size_t xx = static_cast<std::size_t>(x);
           xx < static_cast<std::size_t>(x) + 4; ++xx) {
        grid.at(0, y, xx) = 0.8f;
      }
    }
  }
  EXPECT_LE(rpn.propose(grid).size(), 3u);
}

TEST(RpnTest, RejectsNonGridInput) {
  const Rpn rpn;
  EXPECT_THROW((void)rpn.propose(tensor::Tensor({2, 8, 8})),
               std::invalid_argument);
  EXPECT_THROW((void)rpn.propose(tensor::Tensor({8})), std::invalid_argument);
}

TEST(RpnTest, HigherContrastYieldsHigherObjectness) {
  const Box rect{10, 10, 16, 14};
  const Rpn rpn;
  const auto strong = rpn.propose(grid_with_rect(32, rect, 0.8f));
  const auto weak = rpn.propose(grid_with_rect(32, rect, 0.15f));
  ASSERT_FALSE(strong.empty());
  float strong_best = 0.0f, weak_best = 0.0f;
  for (const auto& p : strong) strong_best = std::max(strong_best, p.objectness);
  for (const auto& p : weak) weak_best = std::max(weak_best, p.objectness);
  EXPECT_GT(strong_best, weak_best);
}

}  // namespace
}  // namespace eco::detect
