#include "energy/sensor_energy.hpp"

#include <gtest/gtest.h>

namespace eco::energy {
namespace {

TEST(SensorSpecTest, DatasheetValues) {
  const SensorPowerSpec radar = sensor_power_spec(PhysicalSensor::kRadar);
  EXPECT_DOUBLE_EQ(radar.total_power_w, 24.0);
  EXPECT_DOUBLE_EQ(radar.motor_power_w, 2.4);
  // Paper: Navtech CTS350-X P_meas = 21.6 W.
  EXPECT_DOUBLE_EQ(radar.measurement_power_w(), 21.6);

  const SensorPowerSpec lidar = sensor_power_spec(PhysicalSensor::kLidar);
  EXPECT_DOUBLE_EQ(lidar.total_power_w, 12.0);
  // Paper: HDL-32E P_meas estimated at 9.6 W.
  EXPECT_DOUBLE_EQ(lidar.measurement_power_w(), 9.6);

  const SensorPowerSpec zed = sensor_power_spec(PhysicalSensor::kZedCamera);
  EXPECT_DOUBLE_EQ(zed.total_power_w, 1.9);
  EXPECT_DOUBLE_EQ(zed.motor_power_w, 0.0);
}

TEST(SensorSpecTest, PerMeasurementEnergyEquation10) {
  // E_s = (P_meas + P_motor) / f = P_total / f.
  for (std::size_t i = 0; i < kNumPhysicalSensors; ++i) {
    const SensorPowerSpec spec =
        sensor_power_spec(static_cast<PhysicalSensor>(i));
    EXPECT_NEAR(spec.active_energy_j(),
                spec.total_power_w / spec.frequency_hz, 1e-12);
    EXPECT_NEAR(spec.gated_energy_j(),
                spec.motor_power_w / spec.frequency_hz, 1e-12);
    EXPECT_LE(spec.gated_energy_j(), spec.active_energy_j());
  }
}

TEST(SensorEnergyTest, AllActiveWithoutGating) {
  SensorUsage none;  // no sensor used
  const double without_gating = sensor_energy_j(none, /*clock_gating=*/false);
  double expected = 0.0;
  for (std::size_t i = 0; i < kNumPhysicalSensors; ++i) {
    expected +=
        sensor_power_spec(static_cast<PhysicalSensor>(i)).active_energy_j();
  }
  EXPECT_NEAR(without_gating, expected, 1e-9);
}

TEST(SensorEnergyTest, GatingDropsToMotorShareForUnused) {
  SensorUsage cameras_only;
  cameras_only.zed_camera = true;
  const double gated = sensor_energy_j(cameras_only, /*clock_gating=*/true);
  const double expected =
      sensor_power_spec(PhysicalSensor::kZedCamera).active_energy_j() +
      sensor_power_spec(PhysicalSensor::kLidar).gated_energy_j() +
      sensor_power_spec(PhysicalSensor::kRadar).gated_energy_j();
  EXPECT_NEAR(gated, expected, 1e-9);
}

TEST(SensorEnergyTest, GatingNeverIncreasesEnergy) {
  for (int mask = 0; mask < 8; ++mask) {
    SensorUsage usage;
    usage.zed_camera = (mask & 1) != 0;
    usage.lidar = (mask & 2) != 0;
    usage.radar = (mask & 4) != 0;
    EXPECT_LE(sensor_energy_j(usage, true), sensor_energy_j(usage, false));
  }
}

TEST(SensorEnergyTest, AllSensorsUsedGatingIsNoOp) {
  SensorUsage all;
  all.zed_camera = all.lidar = all.radar = true;
  EXPECT_NEAR(sensor_energy_j(all, true), sensor_energy_j(all, false), 1e-12);
}

TEST(SensorEnergyTest, RadarDominatesSensorBudget) {
  // The Navtech is by far the hungriest sensor per measurement.
  EXPECT_GT(sensor_power_spec(PhysicalSensor::kRadar).active_energy_j(),
            sensor_power_spec(PhysicalSensor::kLidar).active_energy_j() * 3);
  EXPECT_GT(sensor_power_spec(PhysicalSensor::kRadar).active_energy_j(),
            sensor_power_spec(PhysicalSensor::kZedCamera).active_energy_j() * 10);
}

TEST(TotalEnergyTest, Equation11Composition) {
  SensorUsage usage;
  usage.lidar = true;
  const double platform = 2.5;
  EXPECT_NEAR(total_energy_j(platform, usage, true),
              platform + sensor_energy_j(usage, true), 1e-12);
}

TEST(TotalEnergyTest, LateFusionBudgetNearPaperTable3) {
  // Paper Table 3: late fusion total (platform 3.798 J + all sensors)
  // = 13.27 J per frame. Our calibrated model should land within ~5%.
  SensorUsage all;
  all.zed_camera = all.lidar = all.radar = true;
  const double total = total_energy_j(3.798, all, false);
  EXPECT_NEAR(total, 13.27, 0.7);
}

TEST(PhysicalSensorTest, Names) {
  EXPECT_STREQ(physical_sensor_name(PhysicalSensor::kZedCamera),
               "zed_stereo_camera");
  EXPECT_STREQ(physical_sensor_name(PhysicalSensor::kLidar),
               "velodyne_hdl32e");
  EXPECT_STREQ(physical_sensor_name(PhysicalSensor::kRadar),
               "navtech_cts350x");
}

}  // namespace
}  // namespace eco::energy
