#include "detect/losses.hpp"

#include <gtest/gtest.h>

namespace eco::detect {
namespace {

Detection make_det(Box box, ObjectClass cls, float score,
                   std::size_t num_classes = kNumObjectClasses) {
  Detection d;
  d.box = box;
  d.cls = cls;
  d.score = score;
  d.class_scores.assign(num_classes, 0.02f);
  d.class_scores[static_cast<std::size_t>(cls)] = 0.86f;
  return d;
}

GroundTruth make_gt(Box box, ObjectClass cls) {
  GroundTruth gt;
  gt.box = box;
  gt.cls = cls;
  return gt;
}

TEST(MatchTest, GreedyHighScoreFirst) {
  const std::vector<GroundTruth> gts = {make_gt({0, 0, 4, 4},
                                                ObjectClass::kCar)};
  const std::vector<Detection> dets = {
      make_det({0, 0, 4, 4}, ObjectClass::kCar, 0.5f),
      make_det({0.2f, 0, 4.2f, 4}, ObjectClass::kCar, 0.9f),
  };
  const auto matches = match_detections(dets, gts, 0.5f);
  EXPECT_EQ(matches[0], -1);  // lower score loses the only GT
  EXPECT_EQ(matches[1], 0);
}

TEST(MatchTest, IouThresholdGatesMatching) {
  const std::vector<GroundTruth> gts = {make_gt({0, 0, 4, 4},
                                                ObjectClass::kCar)};
  const std::vector<Detection> dets = {
      make_det({3, 3, 7, 7}, ObjectClass::kCar, 0.9f)};  // IoU = 1/31
  EXPECT_EQ(match_detections(dets, gts, 0.5f)[0], -1);
  EXPECT_EQ(match_detections(dets, gts, 0.01f)[0], 0);
}

TEST(MatchTest, EachGroundTruthClaimedOnce) {
  const std::vector<GroundTruth> gts = {make_gt({0, 0, 4, 4},
                                                ObjectClass::kCar)};
  const std::vector<Detection> dets = {
      make_det({0, 0, 4, 4}, ObjectClass::kCar, 0.9f),
      make_det({0, 0, 4, 4}, ObjectClass::kCar, 0.8f),
  };
  const auto matches = match_detections(dets, gts, 0.5f);
  EXPECT_EQ(matches[0], 0);
  EXPECT_EQ(matches[1], -1);
}

TEST(DetectionLossTest, PerfectDetectionLowLoss) {
  const std::vector<GroundTruth> gts = {make_gt({2, 2, 8, 6},
                                                ObjectClass::kCar)};
  const std::vector<Detection> dets = {
      make_det({2, 2, 8, 6}, ObjectClass::kCar, 0.9f)};
  const DetectionLoss loss = detection_loss(dets, gts);
  EXPECT_EQ(loss.miss_penalty, 0.0f);
  EXPECT_EQ(loss.false_positive, 0.0f);
  EXPECT_NEAR(loss.regression, 0.0f, 1e-5f);
  EXPECT_LT(loss.classification, 0.2f);  // -log(0.86)
  EXPECT_LT(loss.total(), 0.25f);
}

TEST(DetectionLossTest, MissedObjectsCostPerMiss) {
  const std::vector<GroundTruth> gts = {
      make_gt({2, 2, 8, 6}, ObjectClass::kCar),
      make_gt({20, 20, 26, 24}, ObjectClass::kVan)};
  LossConfig config;
  config.normalize_by_gt = false;
  const DetectionLoss loss = detection_loss({}, gts, config);
  EXPECT_FLOAT_EQ(loss.miss_penalty, 2.0f * config.miss_cost);
  EXPECT_FLOAT_EQ(loss.total(), loss.miss_penalty);
}

TEST(DetectionLossTest, FalsePositivesScaledByScore) {
  LossConfig config;
  config.normalize_by_gt = false;
  const std::vector<Detection> dets = {
      make_det({0, 0, 3, 3}, ObjectClass::kCar, 0.5f)};
  const DetectionLoss loss = detection_loss(dets, {}, config);
  EXPECT_FLOAT_EQ(loss.false_positive, config.false_positive_cost * 0.5f);
}

TEST(DetectionLossTest, WrongClassRaisesClassificationLoss) {
  const std::vector<GroundTruth> gts = {make_gt({2, 2, 8, 6},
                                                ObjectClass::kCar)};
  const auto right = detection_loss(
      {make_det({2, 2, 8, 6}, ObjectClass::kCar, 0.9f)}, gts);
  const auto wrong = detection_loss(
      {make_det({2, 2, 8, 6}, ObjectClass::kVan, 0.9f)}, gts);
  EXPECT_GT(wrong.classification, right.classification + 1.0f);
}

TEST(DetectionLossTest, RegressionGrowsWithBoxError) {
  const std::vector<GroundTruth> gts = {make_gt({10, 10, 16, 14},
                                                ObjectClass::kCar)};
  LossConfig config;
  config.match_iou = 0.1f;
  const auto tight = detection_loss(
      {make_det({10, 10, 16, 14}, ObjectClass::kCar, 0.9f)}, gts, config);
  const auto loose = detection_loss(
      {make_det({9, 9, 17, 15}, ObjectClass::kCar, 0.9f)}, gts, config);
  EXPECT_GT(loose.regression, tight.regression);
}

TEST(DetectionLossTest, NormalizationDividesByGtCount) {
  const std::vector<GroundTruth> gts = {
      make_gt({2, 2, 8, 6}, ObjectClass::kCar),
      make_gt({20, 20, 26, 24}, ObjectClass::kVan)};
  LossConfig norm;
  LossConfig raw = norm;
  raw.normalize_by_gt = false;
  const auto ln = detection_loss({}, gts, norm);
  const auto lr = detection_loss({}, gts, raw);
  EXPECT_NEAR(ln.total() * 2.0f, lr.total(), 1e-5f);
}

TEST(DetectionLossTest, EmptySceneEmptyDetectionsZeroLoss) {
  EXPECT_FLOAT_EQ(detection_loss({}, {}).total(), 0.0f);
}

TEST(DetectionLossTest, TotalIsSumOfComponents) {
  const std::vector<GroundTruth> gts = {make_gt({2, 2, 8, 6},
                                                ObjectClass::kCar)};
  const std::vector<Detection> dets = {
      make_det({2.5f, 2, 8.5f, 6}, ObjectClass::kVan, 0.8f),
      make_det({30, 30, 33, 33}, ObjectClass::kCar, 0.4f)};
  const DetectionLoss loss = detection_loss(dets, gts);
  EXPECT_FLOAT_EQ(loss.total(), loss.regression + loss.classification +
                                    loss.miss_penalty + loss.false_positive);
  EXPECT_GT(loss.false_positive, 0.0f);
}

}  // namespace
}  // namespace eco::detect
