// Failure injection: a dead sensor must degrade configurations that depend
// on it, and the adaptive engine (with an oracle gate) must route around it.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "dataset/generator.hpp"
#include "gating/loss_gate.hpp"

namespace eco {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  static const core::EcoFusionEngine& engine() {
    static core::EcoFusionEngine instance;
    return instance;
  }
  static dataset::Frame healthy_frame() {
    dataset::DatasetConfig config;
    return dataset::generate_frame(dataset::SceneType::kCity, config, 33);
  }
};

TEST_F(FailureInjectionTest, InjectionZeroesTheGrid) {
  dataset::Frame frame = healthy_frame();
  ASSERT_GT(frame.grid(dataset::SensorKind::kCameraRight).max(), 0.0f);
  dataset::inject_sensor_failure(frame, dataset::SensorKind::kCameraRight);
  EXPECT_EQ(frame.grid(dataset::SensorKind::kCameraRight).max(), 0.0f);
  // Other sensors untouched.
  EXPECT_GT(frame.grid(dataset::SensorKind::kLidar).max(), 0.0f);
}

TEST_F(FailureInjectionTest, DeadSensorDegradesItsOwnConfig) {
  dataset::Frame frame = healthy_frame();
  const std::size_t cr = engine().baselines().camera_right;
  const float healthy_loss = engine().run_static(frame, cr).loss.total();
  dataset::inject_sensor_failure(frame, dataset::SensorKind::kCameraRight);
  const float dead_loss = engine().run_static(frame, cr).loss.total();
  EXPECT_GT(dead_loss, healthy_loss);
  // With no signal at all, every object is missed.
  EXPECT_TRUE(engine().run_static(frame, cr).detections.empty());
}

TEST_F(FailureInjectionTest, OtherModalitiesUnaffected) {
  dataset::Frame frame = healthy_frame();
  const std::size_t lidar = engine().baselines().lidar;
  const float before = engine().run_static(frame, lidar).loss.total();
  dataset::inject_sensor_failure(frame, dataset::SensorKind::kCameraRight);
  const float after = engine().run_static(frame, lidar).loss.total();
  EXPECT_FLOAT_EQ(before, after);
}

TEST_F(FailureInjectionTest, AdaptiveEngineRoutesAroundDeadSensor) {
  dataset::Frame frame = healthy_frame();
  dataset::inject_sensor_failure(frame, dataset::SensorKind::kCameraRight);

  gating::LossBasedGate oracle(engine().config_space().size());
  core::JointOptParams params;
  params.gamma = 0.0f;  // pin the true best configuration
  params.lambda_energy = 0.0f;
  const auto result = engine().run_adaptive(frame, oracle, params);

  // The chosen configuration must beat the dead sensor's own config...
  const std::size_t cr = engine().baselines().camera_right;
  EXPECT_LT(result.run.loss.total(),
            engine().run_static(frame, cr).loss.total());
  // ...and the frame still yields detections via the surviving sensors.
  EXPECT_FALSE(result.run.detections.empty());
}

TEST_F(FailureInjectionTest, LateFusionSurvivesSingleFailure) {
  // The robustness argument for late fusion: one dead sensor out of four
  // still leaves a working ensemble.
  dataset::Frame frame = healthy_frame();
  dataset::inject_sensor_failure(frame, dataset::SensorKind::kRadar);
  const auto result =
      engine().run_static(frame, engine().baselines().late);
  EXPECT_FALSE(result.detections.empty());
}

}  // namespace
}  // namespace eco
