#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/logging.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace eco::util {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table table({"A", "Bee"});
  table.add_row({"1", "2"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| A"), std::string::npos);
  EXPECT_NE(out.find("| Bee"), std::string::npos);
  EXPECT_NE(out.find("| 1"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.column_count(), 2u);
}

TEST(TableTest, ColumnWidthAdaptsToWidestCell) {
  Table table({"x"});
  table.add_row({"wide-cell-content"});
  const std::string out = table.render();
  EXPECT_NE(out.find("wide-cell-content"), std::string::npos);
  // Every line has the same length.
  std::size_t line_len = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
}

TEST(TableTest, SeparatorProducesRule) {
  Table table({"a"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // header rule + top + separator + bottom = 4 rules
  std::size_t rules = 0;
  for (std::size_t pos = 0; (pos = out.find("+-", pos)) != std::string::npos;
       ++pos) {
    ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456, 3), "1.235");
  EXPECT_EQ(fmt(2.0, 1), "2.0");
  EXPECT_EQ(fmt_pct(0.8432, 2), "84.32%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

TEST(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WriterProducesHeaderAndRows) {
  CsvWriter csv({"x", "y"});
  csv.add_row({"1", "2"});
  csv.add_row({"3", "4,5"});
  const std::string out = csv.to_string();
  EXPECT_EQ(out, "x,y\n1,2\n3,\"4,5\"\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(CsvTest, ShortRowsArePadded) {
  CsvWriter csv({"a", "b", "c"});
  csv.add_row({"1"});
  EXPECT_EQ(csv.to_string(), "a,b,c\n1,,\n");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingleToken) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, TrimRemovesWhitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, JoinWithSeparator) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_TRUE(starts_with("ecofusion", "eco"));
  EXPECT_FALSE(starts_with("eco", "ecofusion"));
}

TEST(LoggingTest, LevelFilterSuppressesBelowThreshold) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Just exercise the path; output goes to stderr.
  log_info() << "suppressed";
  log_error() << "emitted";
  set_log_level(original);
}

}  // namespace
}  // namespace eco::util
