// Pins the int8 (Tier B) backend's contracts: the quantizer's rounding and
// saturation rules, zero-range channels, the conv kernel's bitwise
// agreement with its scalar integer model across awkward geometries
// (unaligned tails, row restriction), the quantized RPN scan's
// self-consistency across every propose entry point, calibration
// determinism across threads, the loud ECO_BACKEND failure, and that the
// act_range plumbing is inert on Tier-A backends.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "core/quant_calibration.hpp"
#include "detect/rpn.hpp"
#include "detect/scan_scratch.hpp"
#include "tensor/backend.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "util/rng.hpp"

namespace eco::tensor {
namespace {

Tensor random_tensor(Shape shape, util::Rng& rng, float lo = -1.0f,
                     float hi = 1.0f) {
  Tensor t(std::move(shape));
  for (float& v : t.vec()) v = rng.uniform_f(lo, hi);
  return t;
}

// ---- quantizer primitives ------------------------------------------------

TEST(QuantPrimitivesTest, RoundsHalfAwayFromZero) {
  EXPECT_EQ(quant_round(2.5f), 3);
  EXPECT_EQ(quant_round(-2.5f), -3);
  EXPECT_EQ(quant_round(0.5f), 1);
  EXPECT_EQ(quant_round(-0.5f), -1);
  EXPECT_EQ(quant_round(2.4f), 2);
  EXPECT_EQ(quant_round(-2.4f), -2);
  EXPECT_EQ(quant_round(0.0f), 0);
}

TEST(QuantPrimitivesTest, SaturatesAtPlusMinus127) {
  EXPECT_EQ(saturate_int8(127), 127);
  EXPECT_EQ(saturate_int8(128), 127);
  EXPECT_EQ(saturate_int8(-127), -127);
  // -128 is representable in int8 but never produced (symmetric range).
  EXPECT_EQ(saturate_int8(-128), -127);
  EXPECT_EQ(saturate_int8(100000), 127);
  EXPECT_EQ(saturate_int8(-100000), -127);
  // quantize_value saturates end to end: a value far beyond the range.
  EXPECT_EQ(quantize_value(10.0f, inverse_scale(1.0f)), 127);
  EXPECT_EQ(quantize_value(-10.0f, inverse_scale(1.0f)), -127);
}

TEST(QuantPrimitivesTest, ZeroRangeMapsEverythingToZero) {
  EXPECT_EQ(symmetric_scale(0.0f), 0.0f);
  EXPECT_EQ(inverse_scale(0.0f), 0.0f);
  EXPECT_EQ(quantize_value(123.0f, inverse_scale(0.0f)), 0);
  EXPECT_EQ(quantize_value(-123.0f, inverse_scale(0.0f)), 0);
}

TEST(QuantPrimitivesTest, MaxAbsCoversTailsAndEmpty) {
  EXPECT_EQ(max_abs(nullptr, 0), 0.0f);
  // Odd lengths exercise the vector loop's scalar tail; the max must be
  // found regardless of where it lands relative to lane boundaries.
  for (std::size_t n : {1u, 3u, 4u, 7u, 8u, 9u, 31u, 100u}) {
    std::vector<float> x(n, 0.25f);
    for (std::size_t peak = 0; peak < n; ++peak) {
      x[peak] = -3.5f;
      EXPECT_EQ(max_abs(x.data(), n), 3.5f) << "n=" << n << " peak=" << peak;
      x[peak] = 0.25f;
    }
  }
}

TEST(QuantPrimitivesTest, QuantizeArrayMatchesScalarQuantizer) {
  util::Rng rng(31337);
  for (std::size_t n : {1u, 5u, 8u, 13u, 16u, 33u, 100u}) {
    std::vector<float> x(n);
    for (float& v : x) v = rng.uniform_f(-4.0f, 4.0f);
    // Include exact ties and out-of-range values.
    if (n >= 4) {
      x[0] = 2.5f;
      x[1] = -2.5f;
      x[2] = 100.0f;
      x[3] = -100.0f;
    }
    const float inv = inverse_scale(2.0f);
    std::vector<std::int8_t> q(n);
    quantize_array(x.data(), n, inv, q.data());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(q[i], quantize_value(x[i], inv)) << "n=" << n << " i=" << i;
    }
  }
}

// ---- weight plans --------------------------------------------------------

TEST(QuantConvPlanTest, ZeroRangeChannelDequantizesToBias) {
  // Channel 0 is all zeros: its scale must be 0 and every output cell of
  // that channel must equal the bias exactly, for any input.
  Tensor weight({2, 1, 3, 3});
  weight.zero();
  weight.at(1, 0, 1, 1) = 1.0f;
  const QuantConvPlan plan = build_quant_conv_plan(weight);
  ASSERT_EQ(plan.weight_scale.size(), 2u);
  EXPECT_EQ(plan.weight_scale[0], 0.0f);
  EXPECT_GT(plan.weight_scale[1], 0.0f);

  util::Rng rng(99);
  const Tensor input = random_tensor({1, 7, 9}, rng);
  Tensor bias({2});
  bias[0] = 0.75f;
  bias[1] = -0.25f;
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  Tensor out({2, 7, 9});
  conv2d_rows_int8(input, weight, bias, spec, 0, 7, out);
  for (std::size_t y = 0; y < 7; ++y) {
    for (std::size_t x = 0; x < 9; ++x) {
      ASSERT_EQ(out.at(0, y, x), 0.75f) << y << "," << x;
    }
  }
}

TEST(QuantConvPlanTest, CacheSharesIdenticalWeights) {
  util::Rng rng(7);
  const Tensor weight = random_tensor({4, 2, 3, 3}, rng);
  Tensor copy = weight;  // same bytes, distinct tensor
  const auto a = quant_conv_plan(weight);
  const auto b = quant_conv_plan(copy);
  EXPECT_EQ(a.get(), b.get());  // one shared plan, not two builds
}

// ---- int8 conv vs its scalar integer model -------------------------------

/// The kernel's documented arithmetic, in plain scalar code: quantize the
/// whole input against the effective range, accumulate guarded int32 taps,
/// dequantize with float(acc)·(in_scale·w_scale[oc]) + bias[oc].
Tensor int8_conv_model(const Tensor& input, const Tensor& weight,
                       const Tensor& bias, const Conv2dSpec& spec) {
  const std::size_t h = input.size(1), w = input.size(2);
  const std::size_t oh = spec.out_extent(h), ow = spec.out_extent(w);
  const QuantConvPlan plan = build_quant_conv_plan(weight);
  const float in_range = spec.act_range > 0.0f
                             ? spec.act_range
                             : max_abs(input.data(), input.numel());
  const float in_scale = symmetric_scale(in_range);
  std::vector<std::int8_t> q(input.numel());
  quantize_array(input.data(), input.numel(), inverse_scale(in_range),
                 q.data());
  Tensor out({spec.out_channels, oh, ow});
  const std::size_t k = spec.kernel;
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    const float dequant = in_scale * plan.weight_scale[oc];
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox) {
        std::int32_t acc = 0;
        for (std::size_t ic = 0; ic < spec.in_channels; ++ic) {
          for (std::size_t ky = 0; ky < k; ++ky) {
            const auto iy = static_cast<std::ptrdiff_t>(oy * spec.stride + ky) -
                            static_cast<std::ptrdiff_t>(spec.padding);
            if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
            for (std::size_t kx = 0; kx < k; ++kx) {
              const auto ix =
                  static_cast<std::ptrdiff_t>(ox * spec.stride + kx) -
                  static_cast<std::ptrdiff_t>(spec.padding);
              if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
              acc += static_cast<std::int32_t>(
                         q[(ic * h + static_cast<std::size_t>(iy)) * w +
                           static_cast<std::size_t>(ix)]) *
                     static_cast<std::int32_t>(
                         plan.weights[((oc * spec.in_channels + ic) * k + ky) *
                                          k +
                                      kx]);
            }
          }
        }
        out.at(oc, oy, ox) = static_cast<float>(acc) * dequant + bias[oc];
      }
    }
  }
  return out;
}

struct Int8Case {
  std::size_t in_channels, out_channels, kernel, stride, padding, h, w;
  float act_range;
};

class Int8ConvEquivalence : public ::testing::TestWithParam<Int8Case> {};

TEST_P(Int8ConvEquivalence, KernelMatchesScalarModelBitwise) {
  const Int8Case c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  spec.act_range = c.act_range;
  util::Rng rng(c.kernel * 7919 + c.h * 13 + c.w);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);
  ASSERT_GT(oh, 0u);
  ASSERT_GT(ow, 0u);

  Tensor kernel_out({spec.out_channels, oh, ow});
  conv2d_rows_int8(input, weight, bias, spec, 0, oh, kernel_out);
  const Tensor model = int8_conv_model(input, weight, bias, spec);
  EXPECT_TRUE(kernel_out.equals(model))
      << "k=" << c.kernel << " s=" << c.stride << " p=" << c.padding
      << " h=" << c.h << " w=" << c.w << " range=" << c.act_range;

  // The dispatching entry point reaches the same kernel for kInt8.
  Conv2dSpec dispatched_spec = spec;
  dispatched_spec.backend = Backend::kInt8;
  Tensor dispatched({spec.out_channels, oh, ow});
  conv2d_rows(input, weight, bias, dispatched_spec, 0, oh, dispatched);
  EXPECT_TRUE(dispatched.equals(model));
}

TEST_P(Int8ConvEquivalence, RowRestrictedMatchesFullConvolution) {
  const Int8Case c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  spec.act_range = c.act_range;
  util::Rng rng(c.h * 101 + c.w);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);

  Tensor full({spec.out_channels, oh, ow});
  conv2d_rows_int8(input, weight, bias, spec, 0, oh, full);
  // Row-by-row refresh composes to the identical result — including with
  // the dynamic (act_range == 0) scale, which is pinned to the WHOLE
  // input's max so partial refreshes agree with the full pass.
  Tensor rows({spec.out_channels, oh, ow});
  for (std::size_t row = 0; row < oh; ++row) {
    conv2d_rows_int8(input, weight, bias, spec, row, row + 1, rows);
  }
  EXPECT_TRUE(rows.equals(full));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Int8ConvEquivalence,
    ::testing::Values(
        // The stem shape, calibrated and dynamic.
        Int8Case{1, 8, 3, 1, 1, 48, 48, 0.0f},
        Int8Case{1, 8, 3, 1, 1, 48, 48, 2.0f},
        // Odd extents and non-square grids (vector-tail coverage: widths
        // straddle the 8-cell SSE span and every residue near it).
        Int8Case{1, 2, 3, 1, 1, 5, 7, 0.0f},
        Int8Case{2, 3, 3, 1, 1, 9, 13, 0.0f},
        Int8Case{1, 1, 3, 1, 1, 3, 1, 0.0f},
        Int8Case{2, 2, 3, 1, 1, 4, 2, 1.5f},
        Int8Case{1, 2, 3, 1, 1, 6, 4, 0.0f},
        Int8Case{2, 1, 3, 1, 1, 6, 5, 0.0f},
        Int8Case{1, 1, 3, 1, 1, 7, 6, 0.0f},
        Int8Case{2, 3, 3, 1, 1, 8, 7, 0.0f},
        Int8Case{1, 1, 3, 1, 1, 8, 9, 0.0f},
        Int8Case{1, 1, 3, 1, 1, 8, 10, 0.0f},
        Int8Case{1, 1, 3, 1, 1, 8, 11, 0.0f},
        Int8Case{1, 1, 3, 1, 1, 1, 48, 0.0f},
        // Shapes leaving the k==3/s==1 fast path (guarded walk).
        Int8Case{2, 2, 5, 1, 2, 9, 9, 0.0f},
        Int8Case{1, 2, 3, 2, 1, 11, 17, 0.0f},
        Int8Case{4, 4, 1, 1, 0, 10, 12, 0.0f},
        // Padding beyond the kernel: fully guarded rows.
        Int8Case{1, 1, 3, 1, 3, 6, 6, 0.0f}));

// ---- quantized RPN scan --------------------------------------------------

/// The int8 scan stages against a brute-force integer model.
TEST(Int8RpnChainTest, BlurIntegralMatchBruteForceModel) {
  util::Rng rng(2024);
  for (const auto& [h, w] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 8}, {8, 1}, {2, 2}, {3, 5}, {4, 7}, {5, 9}, {17, 19},
           {48, 48}}) {
    const Tensor grid = random_tensor({1, h, w}, rng, -1.0f, 1.0f);
    const float range = max_abs(grid.data(), grid.numel());
    std::vector<std::int16_t> q(h * w);
    detect::detail::quantize_grid_int8(grid.data(), h * w,
                                       inverse_scale(range), q.data());
    // Quantized codes agree with the scalar quantizer (int16 storage).
    for (std::size_t i = 0; i < h * w; ++i) {
      ASSERT_EQ(q[i], quantize_value(grid.data()[i], inverse_scale(range)))
          << h << "x" << w << " cell " << i;
    }
    // Blur: n valid taps × (36/n), computed by brute force per cell.
    std::vector<std::int16_t> blurred(h * w);
    detect::detail::box_blur3_int8(q.data(), h, w, blurred.data());
    for (std::size_t y = 0; y < h; ++y) {
      for (std::size_t x = 0; x < w; ++x) {
        std::int32_t acc = 0, n = 0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) {
            const auto yy = static_cast<std::ptrdiff_t>(y) + dy;
            const auto xx = static_cast<std::ptrdiff_t>(x) + dx;
            if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h) || xx < 0 ||
                xx >= static_cast<std::ptrdiff_t>(w)) {
              continue;
            }
            acc += q[static_cast<std::size_t>(yy) * w +
                     static_cast<std::size_t>(xx)];
            ++n;
          }
        }
        ASSERT_EQ(blurred[y * w + x], acc * (36 / n))
            << h << "x" << w << " cell " << y << "," << x;
      }
    }
    // Integral: plain double-loop prefix sums.
    std::vector<std::int32_t> table((h + 1) * (w + 1));
    detect::detail::integral_int32(blurred.data(), h, w, table.data());
    for (std::size_t y = 0; y <= h; ++y) {
      for (std::size_t x = 0; x <= w; ++x) {
        std::int32_t sum = 0;
        for (std::size_t yy = 0; yy < y; ++yy) {
          for (std::size_t xx = 0; xx < x; ++xx) sum += blurred[yy * w + xx];
        }
        ASSERT_EQ(table[y * (w + 1) + x], sum)
            << h << "x" << w << " corner " << y << "," << x;
      }
    }
  }
}

// ---- int8 streaming-run decomposition ------------------------------------

namespace {

/// Grid extents exercising both run flavours and the degenerate cases:
/// the default 48×48 (stride-2 delta, full rows), odd non-square extents
/// (delta-2 table-end trim), and small grids where most anchors clip.
const std::vector<std::pair<std::size_t, std::size_t>>& run_extents() {
  static const std::vector<std::pair<std::size_t, std::size_t>> extents{
      {48, 48}, {47, 53}, {16, 16}, {9, 9}, {5, 12}};
  return extents;
}

detect::RpnConfig stride_config(std::size_t stride) {
  detect::RpnConfig rc;
  rc.anchors.stride = stride;
  return rc;
}

}  // namespace

/// Every anchor index is covered exactly once by runs ∪ leftovers, every
/// run member's corners/validity/reciprocals match its AnchorGeometry
/// (corners advanced by delta·k, inv lanes bitwise copies), and delta-2
/// runs leave their one-past-the-last-corner load inside the table.
TEST(Int8ScanPlanRunsTest, DecompositionCoversEveryIndexExactlyOnce) {
  for (const std::size_t stride : {std::size_t{1}, std::size_t{2}}) {
    for (const auto& [h, w] : run_extents()) {
      const detect::RpnConfig rc = stride_config(stride);
      const detect::ScanPlan plan = detect::build_scan_plan({h, w, rc});
      const std::size_t n = plan.geometry.size();
      std::vector<int> covered(n, 0);
      const std::size_t table_size = (h + 1) * (w + 1);
      for (const detect::Int8Run& run : plan.int8_runs) {
        ASSERT_GE(run.length, 4u);
        EXPECT_EQ(run.delta, stride);
        for (std::size_t k = 0; k < run.length; ++k) {
          const std::size_t idx = run.out_start + k * run.out_stride;
          ASSERT_LT(idx, n);
          ++covered[idx];
          const detect::AnchorGeometry& g = plan.geometry[idx];
          EXPECT_TRUE(g.inner_valid);
          EXPECT_TRUE(g.ring_valid);
          const std::size_t off = run.delta * k;
          EXPECT_EQ(run.corner[0] + off, g.inner00);
          EXPECT_EQ(run.corner[1] + off, g.inner01);
          EXPECT_EQ(run.corner[2] + off, g.inner10);
          EXPECT_EQ(run.corner[3] + off, g.inner11);
          EXPECT_EQ(run.corner[4] + off, g.ring00);
          EXPECT_EQ(run.corner[5] + off, g.ring01);
          EXPECT_EQ(run.corner[6] + off, g.ring10);
          EXPECT_EQ(run.corner[7] + off, g.ring11);
          // Repacked reciprocal areas are bitwise copies per lane.
          const std::size_t inv = run.inv_offset;
          EXPECT_EQ(plan.int8_run_inv.at(inv + k), g.inv_inner);
          EXPECT_EQ(plan.int8_run_inv.at(inv + run.length + k), g.inv_ring);
        }
        if (run.delta == 2) {
          // A delta-2 vector group reads one entry past its last corner.
          EXPECT_LT(run.corner[7] + run.delta * (run.length - 1) + 1,
                    table_size)
              << h << "x" << w;
        }
      }
      for (const auto& [begin, end] : plan.int8_leftovers) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        for (std::size_t i = begin; i < end; ++i) ++covered[i];
      }
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(covered[i], 1)
            << "stride " << stride << " " << h << "x" << w << " index " << i;
      }
    }
  }
}

/// The plan-driven pass (streaming runs + leftover gathers, with its AVX2
/// dispatch) scores bitwise identically to the plain gather pass over the
/// full geometry array, across stride-1 and stride-2 plans and extents
/// that force short runs, trims, and scalar tails.
TEST(Int8ScanPlanRunsTest, PlanPassMatchesGatherPassBitwise) {
  util::Rng rng(77);
  for (const std::size_t stride : {std::size_t{1}, std::size_t{2}}) {
    for (const auto& [h, w] : run_extents()) {
      const detect::RpnConfig rc = stride_config(stride);
      const detect::ScanPlan plan = detect::build_scan_plan({h, w, rc});
      const Tensor grid = random_tensor({1, h, w}, rng, -1.0f, 1.0f);
      const float range = max_abs(grid.data(), grid.numel());
      std::vector<std::int16_t> q(h * w), blurred(h * w);
      std::vector<std::int32_t> table((h + 1) * (w + 1));
      detect::detail::quantize_grid_int8(grid.data(), h * w,
                                         inverse_scale(range), q.data());
      detect::detail::box_blur3_int8(q.data(), h, w, blurred.data());
      detect::detail::integral_int32(blurred.data(), h, w, table.data());
      const double dequant =
          static_cast<double>(symmetric_scale(range)) / 36.0;
      std::vector<double> via_plan(plan.geometry.size(), -1.0);
      std::vector<double> via_gather(plan.geometry.size(), -2.0);
      detect::detail::anchor_contrast_pass_int8(table.data(), plan, dequant,
                                                via_plan.data());
      detect::detail::anchor_contrast_pass_int8(
          table.data(), plan.geometry.data(), plan.geometry.size(), dequant,
          via_gather.data());
      for (std::size_t i = 0; i < plan.geometry.size(); ++i) {
        ASSERT_EQ(via_plan[i], via_gather[i])
            << "stride " << stride << " " << h << "x" << w << " anchor " << i;
      }
    }
  }
}

TEST(Int8RpnTest, ProposeEntryPointsAgreeBitwise) {
  util::Rng rng(4096);
  const Tensor grid = random_tensor({1, 48, 48}, rng, 0.0f, 1.0f);
  for (const float act_range : {0.0f, 1.0f}) {
    detect::RpnConfig config;
    config.backend = Backend::kInt8;
    config.act_range = act_range;
    const detect::Rpn rpn(config);
    detect::ScanScratch scratch;
    const auto with_scratch = rpn.propose(grid, &scratch);
    const auto without = rpn.propose(grid);
    const auto batch = rpn.propose_batch({&grid});
    const auto anchors = detect::generate_anchors(48, 48, config.anchors);
    const auto with_anchors = rpn.propose_with_anchors(grid, anchors);
    ASSERT_FALSE(with_scratch.empty()) << "range=" << act_range;
    ASSERT_EQ(batch.size(), 1u);
    for (const auto* other : {&without, &batch[0], &with_anchors}) {
      ASSERT_EQ(other->size(), with_scratch.size()) << "range=" << act_range;
      for (std::size_t i = 0; i < with_scratch.size(); ++i) {
        EXPECT_EQ((*other)[i].box.x1, with_scratch[i].box.x1);
        EXPECT_EQ((*other)[i].box.y1, with_scratch[i].box.y1);
        EXPECT_EQ((*other)[i].box.x2, with_scratch[i].box.x2);
        EXPECT_EQ((*other)[i].box.y2, with_scratch[i].box.y2);
        EXPECT_EQ((*other)[i].objectness, with_scratch[i].objectness);
      }
    }
  }
}

TEST(Int8RpnTest, ActRangeFieldInertOnTierABackends) {
  // act_range participates in config equality (plan-cache keys) but must
  // not change Tier-A results.
  util::Rng rng(6001);
  const Tensor grid = random_tensor({1, 48, 48}, rng, 0.0f, 1.0f);
  detect::RpnConfig reference_config;
  reference_config.backend = Backend::kReference;
  const auto reference = detect::Rpn(reference_config).propose(grid);
  for (const Backend backend : {Backend::kReference, Backend::kFast,
                                Backend::kSimd}) {
    detect::RpnConfig config;
    config.backend = backend;
    config.act_range = 5.0f;
    const auto proposals = detect::Rpn(config).propose(grid);
    ASSERT_EQ(proposals.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(proposals[i].objectness, reference[i].objectness);
    }
  }
}

// ---- calibration ---------------------------------------------------------

TEST(QuantCalibrationTest, DeterministicAcrossCallsAndThreads) {
  core::QuantCalibrationConfig config;
  const core::QuantCalibration first = core::calibrate_activation_range(config);
  EXPECT_GT(first.act_range, 0.0f);
  EXPECT_EQ(first.frames, dataset::kNumSceneTypes * config.frames_per_scene);
  EXPECT_EQ(first.seed, config.seed);
  // Same seed stream → bitwise-identical scales, regardless of how many
  // threads calibrate concurrently (each shard engine runs this).
  std::vector<core::QuantCalibration> results(4);
  std::vector<std::thread> threads;
  threads.reserve(results.size());
  for (auto& slot : results) {
    threads.emplace_back([&slot, config] {
      slot = core::calibrate_activation_range(config);
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& r : results) {
    ASSERT_EQ(r.act_range, first.act_range);
    ASSERT_EQ(r.frames, first.frames);
  }
  // A different stream may calibrate differently, but stays positive.
  core::QuantCalibrationConfig other;
  other.seed = 777;
  other.frames_per_scene = 2;
  const core::QuantCalibration second =
      core::calibrate_activation_range(other);
  EXPECT_GT(second.act_range, 0.0f);
}

TEST(QuantCalibrationTest, EngineStampsCalibratedRangeUnderInt8) {
  core::EngineConfig config;
  config.backend = Backend::kInt8;
  const core::EcoFusionEngine engine(config);
  const core::QuantCalibration expected =
      core::calibrate_activation_range(config.quant);
  EXPECT_EQ(engine.config().stem.act_range, expected.act_range);
  EXPECT_GT(engine.config().stem.act_range, 0.0f);
  // Every branch RPN sees the same calibrated range.
  for (std::size_t b = 0; b < core::kNumBranches; ++b) {
    const auto& branch =
        engine.branch_detector(static_cast<core::BranchId>(b));
    EXPECT_EQ(branch.config().rpn.act_range, expected.act_range);
    EXPECT_EQ(branch.config().rpn.backend, Backend::kInt8);
  }
  // A user-pinned range skips calibration.
  core::EngineConfig pinned;
  pinned.backend = Backend::kInt8;
  pinned.stem.act_range = 3.25f;
  const core::EcoFusionEngine pinned_engine(pinned);
  EXPECT_EQ(pinned_engine.config().stem.act_range, 3.25f);
  // Tier-A engines never calibrate.
  core::EngineConfig simd;
  simd.backend = Backend::kSimd;
  const core::EcoFusionEngine simd_engine(simd);
  EXPECT_EQ(simd_engine.config().stem.act_range, 0.0f);
}

// ---- backend env parsing -------------------------------------------------

TEST(BackendEnvTest, ParsesEveryBackendName) {
  EXPECT_EQ(backend_from_env_value("reference"), Backend::kReference);
  EXPECT_EQ(backend_from_env_value("fast"), Backend::kFast);
  EXPECT_EQ(backend_from_env_value("simd"), Backend::kSimd);
  EXPECT_EQ(backend_from_env_value("int8"), Backend::kInt8);
  EXPECT_EQ(backend_from_env_value("auto"), Backend::kAuto);
}

TEST(BackendEnvTest, UnknownValueFailsLoudlyListingValidNames) {
  try {
    (void)backend_from_env_value("int9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("int9"), std::string::npos) << message;
    for (const char* name : {"auto", "reference", "fast", "simd", "int8"}) {
      EXPECT_NE(message.find(name), std::string::npos)
          << "missing '" << name << "' in: " << message;
    }
  }
}

TEST(BackendEnvTest, Int8NamesRoundTrip) {
  EXPECT_STREQ(backend_name(Backend::kInt8), "int8");
  const auto parsed = parse_backend("int8");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Backend::kInt8);
}

}  // namespace
}  // namespace eco::tensor
