#include "core/temporal.hpp"

#include <gtest/gtest.h>

#include "gating/loss_gate.hpp"

namespace eco::core {
namespace {

class TemporalTest : public ::testing::Test {
 protected:
  static const EcoFusionEngine& engine() {
    static EcoFusionEngine instance;
    return instance;
  }
  static const dataset::Sequence& sequence() {
    static dataset::Sequence seq = [] {
      dataset::SequenceConfig config;
      config.length = 8;
      return dataset::generate_sequence(dataset::SceneType::kCity, config, 1);
    }();
    return seq;
  }
};

TEST_F(TemporalTest, RunnerHoldsConfigurationUnderHysteresis) {
  gating::LossBasedGate oracle(engine().config_space().size());
  TemporalConfig config;
  config.min_hold_frames = 100;  // effectively never switch
  config.switch_margin = 1e9f;
  TemporalRunner runner(engine(), oracle, config);
  std::size_t switches = 0;
  std::optional<std::size_t> first;
  for (const auto& frame : sequence().frames) {
    const auto step = runner.step(frame);
    if (!first.has_value()) first = step.run.config_index;
    EXPECT_EQ(step.run.config_index, *first);  // held throughout
    if (step.switched) ++switches;
  }
  EXPECT_EQ(switches, 1u);  // only the initial selection
  EXPECT_EQ(runner.switch_count(), 0u);
}

TEST_F(TemporalTest, ZeroHysteresisTracksPerFrameSelection) {
  gating::LossBasedGate oracle(engine().config_space().size());
  TemporalConfig config;
  config.ema_alpha = 1.0f;  // no smoothing
  config.switch_margin = 0.0f;
  config.min_hold_frames = 0;
  TemporalRunner runner(engine(), oracle, config);
  for (const auto& frame : sequence().frames) {
    const auto step = runner.step(frame);
    // With α=1 and no hysteresis, the choice equals the frame-wise argmin
    // of the joint objective.
    const auto losses = engine().config_losses(frame);
    const auto& energies =
        engine().adaptive_energy_table(oracle.complexity());
    EXPECT_EQ(step.run.config_index,
              select_configuration(losses, energies, config.joint));
  }
}

TEST_F(TemporalTest, SmoothingReducesSwitchRate) {
  gating::LossBasedGate oracle(engine().config_space().size());
  TemporalConfig jittery;
  jittery.ema_alpha = 1.0f;
  jittery.switch_margin = 0.0f;
  jittery.min_hold_frames = 0;
  TemporalConfig smooth;
  smooth.ema_alpha = 0.3f;
  smooth.switch_margin = 0.05f;
  smooth.min_hold_frames = 3;

  TemporalRunner jittery_runner(engine(), oracle, jittery);
  TemporalRunner smooth_runner(engine(), oracle, smooth);
  for (const auto& frame : sequence().frames) {
    (void)jittery_runner.step(frame);
    (void)smooth_runner.step(frame);
  }
  EXPECT_LE(smooth_runner.switch_count(), jittery_runner.switch_count());
}

TEST_F(TemporalTest, ResetClearsState) {
  gating::LossBasedGate oracle(engine().config_space().size());
  TemporalRunner runner(engine(), oracle);
  (void)runner.step(sequence().frames.front());
  EXPECT_TRUE(runner.current_config().has_value());
  runner.reset();
  EXPECT_FALSE(runner.current_config().has_value());
  EXPECT_EQ(runner.switch_count(), 0u);
}

TEST(DutyCyclerTest, UnusedSensorGatesAfterDelay) {
  DutyCycleConfig config;
  config.off_delay_frames = 2;
  SensorDutyCycler cycler(config);
  energy::SensorUsage cameras_only;
  cameras_only.zed_camera = true;

  const auto radar_active =
      energy::sensor_power_spec(energy::PhysicalSensor::kRadar)
          .active_energy_j();
  const auto radar_gated =
      energy::sensor_power_spec(energy::PhysicalSensor::kRadar)
          .gated_energy_j();

  // Radar never used: starts gated and stays gated.
  const double e0 = cycler.step(cameras_only);
  EXPECT_LT(e0, radar_active);

  // Use radar once: it must be active this frame and during the spin-down.
  energy::SensorUsage with_radar = cameras_only;
  with_radar.radar = true;
  const double e1 = cycler.step(with_radar);
  EXPECT_GE(e1, radar_active);
  const double e2 = cycler.step(cameras_only);  // idle 1 <= delay 2
  EXPECT_GE(e2, radar_active);
  (void)cycler.step(cameras_only);              // idle 2 <= delay 2
  const double e4 = cycler.step(cameras_only);  // idle 3 > delay -> gated
  EXPECT_LT(e4 - (e1 - radar_active), radar_active);
  EXPECT_NEAR(e4, e0 + 0.0, radar_active);  // back to the gated level
  (void)radar_gated;
}

TEST(DutyCyclerTest, DutyCycleFractionTracksUsage) {
  SensorDutyCycler cycler(DutyCycleConfig{0});
  energy::SensorUsage all;
  all.zed_camera = all.lidar = all.radar = true;
  energy::SensorUsage none;
  for (int i = 0; i < 5; ++i) (void)cycler.step(all);
  for (int i = 0; i < 5; ++i) (void)cycler.step(none);
  EXPECT_EQ(cycler.frames(), 10u);
  EXPECT_NEAR(cycler.duty_cycle(energy::PhysicalSensor::kRadar), 0.5, 1e-9);
}

TEST(DutyCyclerTest, TotalAccumulates) {
  SensorDutyCycler cycler;
  energy::SensorUsage none;
  const double a = cycler.step(none);
  const double b = cycler.step(none);
  EXPECT_NEAR(cycler.total_energy_j(), a + b, 1e-12);
}

TEST_F(TemporalTest, RunSequenceSummarises) {
  gating::LossBasedGate oracle(engine().config_space().size());
  const SequenceSummary summary =
      run_sequence(engine(), oracle, sequence());
  EXPECT_EQ(summary.frames, sequence().frames.size());
  EXPECT_GT(summary.mean_loss, 0.0);
  EXPECT_GT(summary.mean_platform_energy_j, 0.0);
  EXPECT_GT(summary.mean_sensor_energy_j, 0.0);
  EXPECT_NEAR(summary.mean_total_energy_j(),
              summary.mean_platform_energy_j + summary.mean_sensor_energy_j,
              1e-12);
}

TEST_F(TemporalTest, CitySequenceGatesRadarMostOfTheTime) {
  // In a clear city sequence the selected configurations rarely need radar,
  // so the duty cycler should keep it gated for a large fraction of frames.
  gating::LossBasedGate oracle(engine().config_space().size());
  TemporalConfig config;
  config.joint.lambda_energy = 0.1f;  // lean on energy
  TemporalRunner runner(engine(), oracle, config);
  SensorDutyCycler cycler(DutyCycleConfig{1});
  for (const auto& frame : sequence().frames) {
    const auto step = runner.step(frame);
    (void)cycler.step(
        engine().config_space()[step.run.config_index].sensor_usage());
  }
  EXPECT_LT(cycler.duty_cycle(energy::PhysicalSensor::kRadar), 0.9);
}

}  // namespace
}  // namespace eco::core
