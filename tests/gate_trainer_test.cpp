#include "gating/gate_trainer.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eco::gating {
namespace {

/// A toy gating problem with a learnable rule: the best configuration is
/// determined by which half of the feature map carries more energy.
std::vector<GateExample> toy_examples(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<GateExample> examples;
  for (std::size_t i = 0; i < count; ++i) {
    GateExample example;
    example.features = tensor::Tensor({8, 16, 16});
    const bool left_heavy = rng.bernoulli(0.5);
    for (std::size_t c = 0; c < 8; ++c) {
      for (std::size_t y = 0; y < 16; ++y) {
        for (std::size_t x = 0; x < 16; ++x) {
          const bool left = x < 8;
          const float base = (left == left_heavy) ? 0.8f : 0.2f;
          example.features.at(c, y, x) = base + rng.uniform_f(-0.05f, 0.05f);
        }
      }
    }
    // Config 0 is best for left-heavy frames, config 2 otherwise.
    if (left_heavy) {
      example.config_losses = {0.2f, 0.9f, 1.4f, 1.0f};
    } else {
      example.config_losses = {1.4f, 0.9f, 0.2f, 1.0f};
    }
    examples.push_back(std::move(example));
  }
  return examples;
}

LearnedGateConfig toy_gate_config() {
  LearnedGateConfig config;
  config.in_channels = 8;
  config.in_height = 16;
  config.in_width = 16;
  config.hidden_channels = 8;
  config.mlp_hidden = 16;
  config.num_configs = 4;
  return config;
}

TEST(GateTrainerTest, LossDecreasesOverEpochs) {
  LearnedGate gate(toy_gate_config());
  const auto examples = toy_examples(40, 1);
  GateTrainConfig config;
  config.epochs = 15;
  const GateTrainHistory history = train_gate(gate, examples, config);
  ASSERT_EQ(history.epoch_loss.size(), 15u);
  EXPECT_LT(history.final_loss(), history.epoch_loss.front() * 0.6f);
}

TEST(GateTrainerTest, LearnsToyRuleAboveChance) {
  LearnedGate gate(toy_gate_config());
  const auto train = toy_examples(60, 2);
  const auto test = toy_examples(30, 99);
  GateTrainConfig config;
  config.epochs = 25;
  (void)train_gate(gate, train, config);
  // 4 configs -> chance = 0.25 for argmin matching; the rule is learnable.
  EXPECT_GT(gate_selection_accuracy(gate, test), 0.8f);
}

TEST(GateTrainerTest, EmptyExamplesNoOp) {
  LearnedGate gate(toy_gate_config());
  const GateTrainHistory history = train_gate(gate, {}, {});
  EXPECT_TRUE(history.epoch_loss.empty());
  EXPECT_EQ(history.final_loss(), 0.0f);
}

TEST(GateTrainerTest, EarlyStoppingTruncatesHistory) {
  LearnedGate gate(toy_gate_config());
  const auto examples = toy_examples(20, 3);
  GateTrainConfig config;
  config.epochs = 100;
  config.early_stop_delta = 10.0f;  // any epoch counts as "no improvement"
  config.patience = 2;
  const GateTrainHistory history = train_gate(gate, examples, config);
  EXPECT_LT(history.epoch_loss.size(), 100u);
}

TEST(GateTrainerTest, RegretTargetsShiftInvariantSelection) {
  // Two gates trained with/without regret normalisation should both learn
  // the toy rule (the per-frame shift carries no selection information).
  const auto train = toy_examples(60, 4);
  const auto test = toy_examples(30, 123);
  GateTrainConfig with_regret;
  with_regret.epochs = 25;
  with_regret.regret_targets = true;
  GateTrainConfig without_regret = with_regret;
  without_regret.regret_targets = false;

  LearnedGate gate_a(toy_gate_config());
  (void)train_gate(gate_a, train, with_regret);
  LearnedGate gate_b(toy_gate_config());
  (void)train_gate(gate_b, train, without_regret);
  EXPECT_GT(gate_selection_accuracy(gate_a, test), 0.7f);
  EXPECT_GT(gate_selection_accuracy(gate_b, test), 0.7f);
}

TEST(GateTrainerTest, SelectionAccuracyBounds) {
  LearnedGate gate(toy_gate_config());
  const auto examples = toy_examples(10, 5);
  const float acc = gate_selection_accuracy(gate, examples);
  EXPECT_GE(acc, 0.0f);
  EXPECT_LE(acc, 1.0f);
  EXPECT_EQ(gate_selection_accuracy(gate, {}), 0.0f);
}

TEST(GateTrainerTest, AttentionVariantAlsoLearns) {
  LearnedGateConfig config = toy_gate_config();
  config.use_attention = true;
  LearnedGate gate(config);
  const auto train = toy_examples(60, 6);
  GateTrainConfig tc;
  tc.epochs = 25;
  (void)train_gate(gate, train, tc);
  EXPECT_GT(gate_selection_accuracy(gate, toy_examples(30, 7)), 0.7f);
}

}  // namespace
}  // namespace eco::gating
