#include "dataset/generator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace eco::dataset {
namespace {

DatasetConfig small_config(std::uint64_t seed = 2022) {
  DatasetConfig config;
  config.frames_per_scene = 10;
  config.seed = seed;
  return config;
}

TEST(GeneratorTest, ObjectsAreCellAlignedAndInBounds) {
  const DatasetConfig config = small_config();
  for (std::uint64_t id = 0; id < 20; ++id) {
    const Frame frame = generate_frame(SceneType::kCity, config, id);
    for (const auto& gt : frame.objects) {
      EXPECT_EQ(gt.box.x1, std::floor(gt.box.x1));
      EXPECT_EQ(gt.box.y1, std::floor(gt.box.y1));
      EXPECT_EQ(gt.box.width(), std::floor(gt.box.width()));
      EXPECT_GE(gt.box.x1, 0.0f);
      EXPECT_LE(gt.box.x2, static_cast<float>(config.grid.width));
      EXPECT_LE(gt.box.y2, static_cast<float>(config.grid.height));
      EXPECT_TRUE(gt.box.valid());
    }
  }
}

TEST(GeneratorTest, ObjectsDoNotTouch) {
  const DatasetConfig config = small_config();
  for (std::uint64_t id = 0; id < 30; ++id) {
    const Frame frame = generate_frame(SceneType::kJunction, config, id);
    for (std::size_t i = 0; i < frame.objects.size(); ++i) {
      for (std::size_t j = i + 1; j < frame.objects.size(); ++j) {
        detect::Box guard = frame.objects[i].box;
        guard.x1 -= 0.5f;
        guard.y1 -= 0.5f;
        guard.x2 += 0.5f;
        guard.y2 += 0.5f;
        EXPECT_EQ(detect::intersection_area(guard, frame.objects[j].box), 0.0f)
            << "objects " << i << " and " << j << " touch in frame " << id;
      }
    }
  }
}

TEST(GeneratorTest, FrameGenerationIsDeterministic) {
  const DatasetConfig config = small_config();
  const Frame a = generate_frame(SceneType::kRain, config, 5);
  const Frame b = generate_frame(SceneType::kRain, config, 5);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_EQ(a.objects[i].cls, b.objects[i].cls);
    EXPECT_EQ(detect::iou(a.objects[i].box, b.objects[i].box), 1.0f);
  }
  for (SensorKind kind : all_sensor_kinds()) {
    EXPECT_TRUE(a.grid(kind).equals(b.grid(kind)));
  }
}

TEST(GeneratorTest, DifferentFrameIdsDiffer) {
  const DatasetConfig config = small_config();
  const Frame a = generate_frame(SceneType::kCity, config, 1);
  const Frame b = generate_frame(SceneType::kCity, config, 2);
  EXPECT_FALSE(a.grid(SensorKind::kCameraLeft)
                   .equals(b.grid(SensorKind::kCameraLeft)));
}

TEST(GeneratorTest, SeedChangesData) {
  const Frame a = generate_frame(SceneType::kCity, small_config(1), 0);
  const Frame b = generate_frame(SceneType::kCity, small_config(2), 0);
  EXPECT_FALSE(a.grid(SensorKind::kLidar).equals(b.grid(SensorKind::kLidar)));
}

TEST(DatasetTest, SizeAndSceneBlocks) {
  const Dataset data(small_config());
  EXPECT_EQ(data.size(), kNumSceneTypes * 10);
  // Frames are laid out in scene blocks.
  EXPECT_EQ(data.frame(0).scene, SceneType::kCity);
  EXPECT_EQ(data.frame(10).scene, SceneType::kFog);
  EXPECT_EQ(data.frame(79).scene, SceneType::kSnow);
}

TEST(DatasetTest, SplitIs70To30AndDisjoint) {
  const Dataset data(small_config());
  EXPECT_EQ(data.train_indices().size(), 56u);  // 7 per scene x 8
  EXPECT_EQ(data.test_indices().size(), 24u);   // 3 per scene x 8
  std::set<std::size_t> all;
  for (std::size_t i : data.train_indices()) all.insert(i);
  for (std::size_t i : data.test_indices()) {
    EXPECT_EQ(all.count(i), 0u) << "index " << i << " in both splits";
    all.insert(i);
  }
  EXPECT_EQ(all.size(), data.size());
}

TEST(DatasetTest, SplitIsStratifiedPerScene) {
  const Dataset data(small_config());
  for (SceneType scene : all_scene_types()) {
    const auto test = data.test_indices_for_scene(scene);
    EXPECT_EQ(test.size(), 3u) << scene_type_name(scene);
    for (std::size_t index : test) {
      EXPECT_EQ(data.frame(index).scene, scene);
    }
  }
}

TEST(DatasetTest, ReconstructionIsDeterministic) {
  const Dataset a(small_config()), b(small_config());
  EXPECT_EQ(a.train_indices(), b.train_indices());
  EXPECT_EQ(a.test_indices(), b.test_indices());
  EXPECT_TRUE(a.frame(17)
                  .grid(SensorKind::kRadar)
                  .equals(b.frame(17).grid(SensorKind::kRadar)));
}

TEST(DatasetTest, CustomTrainFraction) {
  DatasetConfig config = small_config();
  config.train_fraction = 0.5;
  const Dataset data(config);
  EXPECT_EQ(data.train_indices().size(), 40u);
  EXPECT_EQ(data.test_indices().size(), 40u);
}

class GeneratorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeedSweep, EveryFrameHasObjectsWithinEnvBounds) {
  DatasetConfig config = small_config(GetParam());
  config.frames_per_scene = 4;
  const Dataset data(config);
  for (const Frame& frame : data.frames()) {
    const SceneEnvironment env = scene_environment(frame.scene);
    EXPECT_GE(static_cast<int>(frame.objects.size()), 1);
    EXPECT_LE(static_cast<int>(frame.objects.size()), env.max_objects);
    for (SensorKind kind : all_sensor_kinds()) {
      EXPECT_EQ(frame.grid(kind).numel(),
                config.grid.width * config.grid.height);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeedSweep,
                         ::testing::Values(1ull, 7ull, 123ull, 2022ull));

}  // namespace
}  // namespace eco::dataset
