#include "energy/px2_model.hpp"

#include <gtest/gtest.h>

namespace eco::energy {
namespace {

TEST(ResNet18MacsTest, StemBranchSplitAndTotals) {
  const ResNet18Macs macs = resnet18_macs();
  EXPECT_GT(macs.stem_end, 0u);
  EXPECT_LT(macs.stem_end, macs.layers.size());
  EXPECT_GT(macs.stem_macs(), 0.0);
  EXPECT_GT(macs.branch_macs(), macs.stem_macs());
  EXPECT_NEAR(macs.total_macs(), macs.stem_macs() + macs.branch_macs(), 1.0);
  // ResNet-18 at 224x224 is ~1.8 GMACs; heads add a little.
  EXPECT_GT(macs.total_macs(), 1.5e9);
  EXPECT_LT(macs.total_macs(), 2.5e9);
}

TEST(ResNet18MacsTest, Conv1LayerMacsFormula) {
  const ResNet18Macs macs = resnet18_macs();
  const ConvLayerSpec& conv1 = macs.layers.front();
  EXPECT_EQ(conv1.name, "conv1");
  // 3*64*7*7*112*112
  EXPECT_NEAR(conv1.macs(), 3.0 * 64 * 49 * 112 * 112, 1.0);
}

TEST(Px2ModelTest, SingleCameraLatencyMatchesPaper) {
  const Px2Model px2;
  ExecutionProfile profile;
  profile.stems_run = 1;
  profile.branches = {BranchRun{1, 0}};
  // Paper Table 1: 21.57 ms for a camera-only configuration.
  EXPECT_NEAR(px2.latency_ms(profile), 21.57, 0.05);
}

TEST(Px2ModelTest, LidarRadarProjectionAddsLatency) {
  const Px2Model px2;
  ExecutionProfile profile;
  profile.stems_run = 1;
  profile.stem_projections = 1;
  profile.branches = {BranchRun{1, 1}};
  // Paper Table 1: 21.85 ms for lidar/radar-only configurations.
  EXPECT_NEAR(px2.latency_ms(profile), 21.85, 0.05);
}

TEST(Px2ModelTest, EarlyFusionLatencyNearPaper) {
  const Px2Model px2;
  ExecutionProfile profile;
  profile.stems_run = 3;
  profile.stem_projections = 1;  // lidar input
  profile.branches = {BranchRun{3, 1}};
  // Paper: 31.36 ms; the model is calibrated within ~2%.
  EXPECT_NEAR(px2.latency_ms(profile), 31.36, 0.8);
}

TEST(Px2ModelTest, LateFusionLatencyNearPaper) {
  const Px2Model px2;
  ExecutionProfile profile;
  profile.stems_run = 4;
  profile.stem_projections = 2;
  profile.branches = {BranchRun{1, 0}, BranchRun{1, 0}, BranchRun{1, 1},
                      BranchRun{1, 1}};
  // Paper: 84.32 ms.
  EXPECT_NEAR(px2.latency_ms(profile), 84.32, 1.5);
}

TEST(Px2ModelTest, EnergyIsPowerTimesLatency) {
  const Px2Model px2;
  ExecutionProfile profile;
  profile.stems_run = 2;
  profile.branches = {BranchRun{2, 0}};
  EXPECT_NEAR(px2.energy_j(profile),
              px2.load_power_w() * px2.latency_ms(profile) * 1e-3, 1e-9);
  EXPECT_NEAR(px2.load_power_w(), 45.4, 1e-9);
}

TEST(Px2ModelTest, GateCostsAreNegligible) {
  const Px2Model px2;
  // Paper §5: gate energy < 0.005 J after TensorRT compilation.
  for (GateComplexity gate : {GateComplexity::kKnowledge,
                              GateComplexity::kDeep,
                              GateComplexity::kAttention}) {
    const double joules = px2.load_power_w() * px2.gate_latency_ms(gate) * 1e-3;
    EXPECT_LT(joules, 0.005);
  }
  EXPECT_EQ(px2.gate_latency_ms(GateComplexity::kNone), 0.0);
  EXPECT_GT(px2.gate_latency_ms(GateComplexity::kAttention),
            px2.gate_latency_ms(GateComplexity::kDeep));
}

TEST(Px2ModelTest, LatencyMonotoneInBranchCount) {
  const Px2Model px2;
  ExecutionProfile one, two;
  one.stems_run = 4;
  one.branches = {BranchRun{1, 0}};
  two.stems_run = 4;
  two.branches = {BranchRun{1, 0}, BranchRun{1, 0}};
  EXPECT_GT(px2.latency_ms(two), px2.latency_ms(one));
}

TEST(Px2ModelTest, EmptyProfileCostsOnlyStems) {
  const Px2Model px2;
  ExecutionProfile profile;
  profile.stems_run = 1;
  profile.branches = {};
  EXPECT_NEAR(px2.latency_ms(profile), px2.stem_latency_ms(), 1e-9);
}

TEST(Px2ModelTest, EffectiveThroughputIsPlausible) {
  const Px2Model px2;
  // Effective GMAC/s implied by calibration should be within the PX2's
  // physical envelope (single-digit TOPS, fraction utilised).
  EXPECT_GT(px2.effective_gmacs_stem(), 20.0);
  EXPECT_LT(px2.effective_gmacs_stem(), 1000.0);
  EXPECT_GT(px2.effective_gmacs_branch(), 20.0);
  EXPECT_LT(px2.effective_gmacs_branch(), 1000.0);
}

TEST(Px2ModelTest, EveryConfigurationMeetsRealTimeBound) {
  // ASPLOS'18 constraint cited in the paper: < 100 ms per frame.
  const Px2Model px2;
  ExecutionProfile heaviest;
  heaviest.stems_run = 4;
  heaviest.stem_projections = 2;
  heaviest.gate = GateComplexity::kAttention;
  heaviest.branches = {BranchRun{3, 1}, BranchRun{1, 0}, BranchRun{1, 0},
                       BranchRun{1, 1}, BranchRun{1, 1}};
  EXPECT_LT(px2.latency_ms(heaviest), 125.0);  // full ensemble, documented
  ExecutionProfile late;
  late.stems_run = 4;
  late.stem_projections = 2;
  late.branches = {BranchRun{1, 0}, BranchRun{1, 0}, BranchRun{1, 1},
                   BranchRun{1, 1}};
  EXPECT_LT(px2.latency_ms(late), 100.0);
}

}  // namespace
}  // namespace eco::energy
