// Numerical gradient checks: every trainable module's backward pass is
// verified against central finite differences on a scalar loss. This is the
// strongest correctness property the NN substrate has — if these hold, gate
// training optimises what it claims to.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/nn.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace eco::tensor {
namespace {

/// Scalar loss used for checks: sum of 0.5*y^2 (grad = y).
float loss_of(const Tensor& y) { return 0.5f * y.sum_squares(); }
Tensor loss_grad(const Tensor& y) { return y; }

/// Checks d(loss)/d(input) of a module against finite differences.
void check_input_gradient(Module& module, Tensor input, float tolerance) {
  Tensor y = module.forward(input);
  module.zero_grad();
  const Tensor analytic = module.backward(loss_grad(y));
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < input.numel(); i += std::max<std::size_t>(1, input.numel() / 24)) {
    Tensor plus = input, minus = input;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const float f_plus = loss_of(module.forward(plus));
    const float f_minus = loss_of(module.forward(minus));
    const float numeric = (f_plus - f_minus) / (2.0f * epsilon);
    EXPECT_NEAR(analytic[i], numeric, tolerance)
        << "input grad mismatch at flat index " << i;
  }
}

/// Checks d(loss)/d(params) of a module against finite differences.
void check_param_gradients(Module& module, const Tensor& input,
                           float tolerance) {
  module.zero_grad();
  Tensor y = module.forward(input);
  (void)module.backward(loss_grad(y));
  std::vector<Param*> params;
  module.collect_params(params);
  for (Param* p : params) {
    const float epsilon = 1e-3f;
    for (std::size_t i = 0; i < p->value.numel();
         i += std::max<std::size_t>(1, p->value.numel() / 16)) {
      const float saved = p->value[i];
      p->value[i] = saved + epsilon;
      const float f_plus = loss_of(module.forward(input));
      p->value[i] = saved - epsilon;
      const float f_minus = loss_of(module.forward(input));
      p->value[i] = saved;
      const float numeric = (f_plus - f_minus) / (2.0f * epsilon);
      EXPECT_NEAR(p->grad[i], numeric, tolerance)
          << "param " << p->name << " grad mismatch at " << i;
    }
  }
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (float& v : t.vec()) v = rng.uniform_f(-1.0f, 1.0f);
  return t;
}

TEST(GradCheck, Conv2dInputAndParams) {
  util::Rng rng(101);
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  Conv2d conv(spec, rng);
  const Tensor input = random_tensor({2, 5, 5}, 7);
  check_input_gradient(conv, input, 2e-2f);
  check_param_gradients(conv, input, 2e-2f);
}

TEST(GradCheck, Conv2dStrided) {
  util::Rng rng(102);
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  Conv2d conv(spec, rng);
  const Tensor input = random_tensor({1, 6, 6}, 8);
  check_input_gradient(conv, input, 2e-2f);
  check_param_gradients(conv, input, 2e-2f);
}

TEST(GradCheck, Linear) {
  util::Rng rng(103);
  Linear layer(6, 4, rng);
  const Tensor input = random_tensor({6}, 9);
  check_input_gradient(layer, input, 1e-2f);
  check_param_gradients(layer, input, 1e-2f);
}

TEST(GradCheck, SelfAttention2d) {
  util::Rng rng(104);
  SelfAttention2d attn(4, 3, rng);
  const Tensor input = random_tensor({4, 3, 3}, 10);
  check_input_gradient(attn, input, 3e-2f);
  check_param_gradients(attn, input, 3e-2f);
}

TEST(GradCheck, SequentialConvReluPoolLinear) {
  util::Rng rng(105);
  Sequential net;
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  net.emplace<Conv2d>(spec, rng);
  net.emplace<ReLU>();
  net.emplace<MaxPool2d>();
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 2 * 2, 3, rng);
  const Tensor input = random_tensor({1, 4, 4}, 11);
  check_input_gradient(net, input, 2e-2f);
  check_param_gradients(net, input, 2e-2f);
}

TEST(GradCheck, GlobalAvgPoolHead) {
  util::Rng rng(106);
  Sequential net;
  net.emplace<GlobalAvgPool>();
  net.emplace<Linear>(3, 2, rng);
  const Tensor input = random_tensor({3, 4, 4}, 12);
  check_input_gradient(net, input, 1e-2f);
}

TEST(GradCheck, SmoothL1MatchesFiniteDifference) {
  const Tensor target({3}, {0.1f, -0.4f, 2.0f});
  Tensor pred = random_tensor({3}, 13);
  Tensor analytic;
  (void)smooth_l1(pred, target, &analytic);
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    Tensor plus = pred, minus = pred;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const float numeric =
        (smooth_l1(plus, target) - smooth_l1(minus, target)) / (2 * epsilon);
    EXPECT_NEAR(analytic[i], numeric, 1e-3f);
  }
}

TEST(GradCheck, CrossEntropyMatchesFiniteDifference) {
  Tensor logits = random_tensor({4}, 14);
  Tensor analytic;
  (void)cross_entropy(logits, 2, &analytic);
  const float epsilon = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor plus = logits, minus = logits;
    plus[i] += epsilon;
    minus[i] -= epsilon;
    const float numeric =
        (cross_entropy(plus, 2) - cross_entropy(minus, 2)) / (2 * epsilon);
    EXPECT_NEAR(analytic[i], numeric, 1e-3f);
  }
}

// Parameterized: gradient checks hold across seeds (weight initialisations).
class GradCheckSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GradCheckSeeds, LinearAcrossInitialisations) {
  util::Rng rng(GetParam());
  Linear layer(5, 3, rng);
  const Tensor input = random_tensor({5}, GetParam() ^ 0xABCDull);
  check_input_gradient(layer, input, 1e-2f);
  check_param_gradients(layer, input, 1e-2f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GradCheckSeeds,
                         ::testing::Values(1ull, 2ull, 3ull, 17ull, 99ull));

}  // namespace
}  // namespace eco::tensor
