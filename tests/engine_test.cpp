#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "gating/loss_gate.hpp"

namespace eco::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static const EcoFusionEngine& engine() {
    static EcoFusionEngine instance;
    return instance;
  }
  static const dataset::Frame& frame() {
    static dataset::Frame f = [] {
      dataset::DatasetConfig config;
      return dataset::generate_frame(dataset::SceneType::kCity, config, 21);
    }();
    return f;
  }
};

TEST_F(EngineTest, ConfigSpaceAndBaselines) {
  EXPECT_EQ(engine().config_space().size(), 15u);
  EXPECT_EQ(engine().config_space()[engine().baselines().late].name,
            "CL+CR+L+R");
}

TEST_F(EngineTest, AdaptiveEnergyTableMonotoneInGateComplexity) {
  const auto& deep = engine().adaptive_energy_table(
      energy::GateComplexity::kDeep);
  const auto& attention = engine().adaptive_energy_table(
      energy::GateComplexity::kAttention);
  ASSERT_EQ(deep.size(), 15u);
  for (std::size_t i = 0; i < deep.size(); ++i) {
    EXPECT_GT(deep[i], 0.0f);
    EXPECT_GE(attention[i], deep[i]);  // attention gate costs slightly more
  }
}

TEST_F(EngineTest, StaticEnergyOrderingNoneEarlyLate) {
  const auto& b = engine().baselines();
  EXPECT_LT(engine().static_energy_j(b.camera_left),
            engine().static_energy_j(b.early));
  EXPECT_LT(engine().static_energy_j(b.early),
            engine().static_energy_j(b.late));
  // Late fusion is roughly 3x early (paper Figure 1 / Table 1).
  EXPECT_GT(engine().static_energy_j(b.late),
            2.0 * engine().static_energy_j(b.early));
}

TEST_F(EngineTest, RunStaticProducesConsistentResult) {
  const RunResult result =
      engine().run_static(frame(), engine().baselines().late);
  EXPECT_EQ(result.config_index, engine().baselines().late);
  EXPECT_GT(result.latency_ms, 0.0);
  EXPECT_NEAR(result.energy_j, 45.4 * result.latency_ms * 1e-3, 1e-6);
  EXPECT_FALSE(result.detections.empty());  // city frame has objects
  EXPECT_GE(result.loss.total(), 0.0f);
}

TEST_F(EngineTest, RunStaticIsDeterministic) {
  const RunResult a = engine().run_static(frame(), 5);
  const RunResult b = engine().run_static(frame(), 5);
  ASSERT_EQ(a.detections.size(), b.detections.size());
  for (std::size_t i = 0; i < a.detections.size(); ++i) {
    EXPECT_EQ(a.detections[i].score, b.detections[i].score);
  }
  EXPECT_EQ(a.loss.total(), b.loss.total());
}

TEST_F(EngineTest, ConfigLossesMatchRunStatic) {
  const auto losses = engine().config_losses(frame());
  ASSERT_EQ(losses.size(), engine().config_space().size());
  for (std::size_t i = 0; i < losses.size(); ++i) {
    EXPECT_NEAR(losses[i], engine().run_static(frame(), i).loss.total(),
                1e-4f);
  }
}

TEST_F(EngineTest, GateFeaturesShape) {
  const auto features = engine().gate_features(frame());
  EXPECT_EQ(features.shape(),
            (tensor::Shape{engine().stems().gate_channels(), 24, 24}));
}

TEST_F(EngineTest, AdaptiveWithOracleSelectsMinJoint) {
  gating::LossBasedGate oracle(engine().config_space().size());
  JointOptParams params;
  params.gamma = 0.0f;  // pin the true best configuration
  params.lambda_energy = 0.0f;
  const AdaptiveResult result =
      engine().run_adaptive(frame(), oracle, params);
  const auto losses = engine().config_losses(frame());
  const std::size_t best = best_loss_index(losses);
  EXPECT_EQ(result.run.config_index, best);
  EXPECT_EQ(result.predicted_losses.size(), losses.size());
  ASSERT_FALSE(result.candidates.empty());
  EXPECT_EQ(result.candidates.front(), best);
}

TEST_F(EngineTest, AdaptiveLambdaOnePrefersCheaperConfig) {
  gating::LossBasedGate oracle(engine().config_space().size());
  JointOptParams expensive;
  expensive.gamma = 100.0f;  // all candidates admitted
  expensive.lambda_energy = 1.0f;
  const AdaptiveResult cheap =
      engine().run_adaptive(frame(), oracle, expensive);
  // With λ=1 and every config admitted, the cheapest config wins.
  const auto& table =
      engine().adaptive_energy_table(energy::GateComplexity::kDeep);
  float min_energy = table[0];
  for (float e : table) min_energy = std::min(min_energy, e);
  EXPECT_NEAR(cheap.run.energy_j, min_energy, 1e-5);
}

TEST_F(EngineTest, AdaptiveUsesPrecomputedOracle) {
  gating::LossBasedGate oracle(engine().config_space().size());
  std::vector<float> fake(engine().config_space().size(), 10.0f);
  fake[3] = 0.1f;  // force config 3
  JointOptParams params;
  params.gamma = 0.0f;
  const AdaptiveResult result =
      engine().run_adaptive(frame(), oracle, params, &fake);
  EXPECT_EQ(result.run.config_index, 3u);
}

TEST_F(EngineTest, KnowledgeTableIsValid) {
  const gating::KnowledgeTable table = engine().default_knowledge_table();
  for (std::size_t choice : table) {
    EXPECT_LT(choice, engine().config_space().size());
  }
  // Fog/snow choose the most robust (largest) ensemble.
  const auto& space = engine().config_space();
  const std::size_t fog =
      table[static_cast<std::size_t>(dataset::SceneType::kFog)];
  EXPECT_GE(space[fog].branches.size(), 4u);
  // Motorway chooses a camera-only configuration (cheap, clear daylight).
  const std::size_t mwy =
      table[static_cast<std::size_t>(dataset::SceneType::kMotorway)];
  const auto usage = space[mwy].sensor_usage();
  EXPECT_TRUE(usage.zed_camera);
  EXPECT_FALSE(usage.radar);
}

TEST_F(EngineTest, RunBranchRespectsInputArity) {
  // All seven branches execute on a frame without throwing.
  for (std::size_t b = 0; b < kNumBranches; ++b) {
    EXPECT_NO_THROW(
        (void)engine().run_branch(static_cast<BranchId>(b), frame()));
  }
}

}  // namespace
}  // namespace eco::core
