#include "detect/roi_head.hpp"

#include <gtest/gtest.h>

#include "detect/rpn.hpp"

namespace eco::detect {
namespace {

tensor::Tensor grid_with_rect(std::size_t size, Box rect, float amplitude) {
  tensor::Tensor grid({1, size, size});
  for (std::size_t y = static_cast<std::size_t>(rect.y1);
       y < static_cast<std::size_t>(rect.y2); ++y) {
    for (std::size_t x = static_cast<std::size_t>(rect.x1);
         x < static_cast<std::size_t>(rect.x2); ++x) {
      grid.at(0, y, x) = amplitude;
    }
  }
  return grid;
}

std::vector<ClassPrototype> two_prototypes() {
  return {
      {ObjectClass::kCar, 0.60f, 6.0f, 4.0f},
      {ObjectClass::kPedestrian, 0.55f, 2.0f, 3.0f},
  };
}

TEST(ExtractRegionsTest, FindsSeparateComponents) {
  tensor::Tensor grid({1, 20, 20});
  for (std::size_t y = 2; y < 6; ++y)
    for (std::size_t x = 2; x < 8; ++x) grid.at(0, y, x) = 0.5f;
  for (std::size_t y = 12; y < 15; ++y)
    for (std::size_t x = 12; x < 14; ++x) grid.at(0, y, x) = 0.7f;
  const auto regions = extract_regions(grid, 0.25f, 3);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_FLOAT_EQ(regions[0].box.x1, 2.0f);
  EXPECT_FLOAT_EQ(regions[0].box.x2, 8.0f);
  EXPECT_EQ(regions[0].area, 24u);
  EXPECT_NEAR(regions[0].mean_amplitude, 0.5f, 1e-5f);
  EXPECT_NEAR(regions[1].peak_amplitude, 0.7f, 1e-5f);
}

TEST(ExtractRegionsTest, MinAreaFiltersSpeckle) {
  tensor::Tensor grid({1, 10, 10});
  grid.at(0, 5, 5) = 1.0f;  // single cell
  EXPECT_TRUE(extract_regions(grid, 0.5f, 3).empty());
  EXPECT_EQ(extract_regions(grid, 0.5f, 1).size(), 1u);
}

TEST(ExtractRegionsTest, DiagonalCellsConnect) {
  tensor::Tensor grid({1, 10, 10});
  grid.at(0, 2, 2) = 1.0f;
  grid.at(0, 3, 3) = 1.0f;
  grid.at(0, 4, 4) = 1.0f;
  const auto regions = extract_regions(grid, 0.5f, 3);
  ASSERT_EQ(regions.size(), 1u);  // 8-connectivity joins the diagonal
  EXPECT_EQ(regions[0].area, 3u);
}

TEST(ExtractRegionsTest, ThresholdSplitsWeakFromStrong) {
  tensor::Tensor grid({1, 10, 10});
  for (std::size_t x = 1; x < 4; ++x) grid.at(0, 1, x) = 0.9f;
  for (std::size_t x = 6; x < 9; ++x) grid.at(0, 1, x) = 0.2f;
  EXPECT_EQ(extract_regions(grid, 0.5f, 2).size(), 1u);
  EXPECT_EQ(extract_regions(grid, 0.1f, 2).size(), 2u);
}

TEST(RoiHeadTest, DetectsAndClassifiesCleanRect) {
  const Box rect{10, 10, 16, 14};  // car-sized, amplitude 0.6
  const tensor::Tensor grid = grid_with_rect(32, rect, 0.6f);
  const Rpn rpn;
  const RoiHead head(RoiHeadConfig{}, two_prototypes());
  const auto detections = head.run(grid, rpn.propose(grid));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].cls, ObjectClass::kCar);
  EXPECT_GT(iou(detections[0].box, rect), 0.8f);
  EXPECT_GT(detections[0].score, 0.5f);
  ASSERT_EQ(detections[0].class_scores.size(), 2u);
  EXPECT_GT(detections[0].class_scores[0], detections[0].class_scores[1]);
}

TEST(RoiHeadTest, ClassifiesByGeometryWhenAmplitudesTie) {
  const Box ped{10, 10, 12, 13};  // 2x3 pedestrian extent
  const tensor::Tensor grid = grid_with_rect(32, ped, 0.57f);
  const Rpn rpn;
  const RoiHead head(RoiHeadConfig{}, two_prototypes());
  const auto detections = head.run(grid, rpn.propose(grid));
  ASSERT_EQ(detections.size(), 1u);
  EXPECT_EQ(detections[0].cls, ObjectClass::kPedestrian);
}

TEST(RoiHeadTest, RegionWithoutProposalIsRejected) {
  const Box rect{10, 10, 16, 14};
  const tensor::Tensor grid = grid_with_rect(32, rect, 0.6f);
  const RoiHead head(RoiHeadConfig{}, two_prototypes());
  EXPECT_TRUE(head.run(grid, /*proposals=*/{}).empty());
}

TEST(RoiHeadTest, EmptyGridProducesNoDetections) {
  const Rpn rpn;
  const RoiHead head(RoiHeadConfig{}, two_prototypes());
  const tensor::Tensor grid({1, 32, 32});
  EXPECT_TRUE(head.run(grid, rpn.propose(grid)).empty());
}

TEST(RoiHeadTest, BoxDeflateShrinksOutput) {
  const Box rect{8, 8, 18, 16};
  const tensor::Tensor grid = grid_with_rect(32, rect, 0.6f);
  const Rpn rpn;
  RoiHeadConfig deflated;
  deflated.box_deflate = 0.5f;
  const RoiHead head_full(RoiHeadConfig{}, two_prototypes());
  const RoiHead head_half(deflated, two_prototypes());
  const auto full = head_full.run(grid, rpn.propose(grid));
  const auto half = head_half.run(grid, rpn.propose(grid));
  ASSERT_FALSE(full.empty());
  ASSERT_FALSE(half.empty());
  EXPECT_NEAR(half[0].box.width(), 0.5f * full[0].box.width(), 0.6f);
  EXPECT_NEAR(half[0].box.cx(), full[0].box.cx(), 0.5f);
}

TEST(RoiHeadTest, MinScoreFiltersWeakRegions) {
  const Box rect{10, 10, 16, 14};
  const tensor::Tensor grid = grid_with_rect(32, rect, 0.08f);
  const Rpn rpn;
  RoiHeadConfig strict;
  strict.min_score = 0.99f;
  const RoiHead head(strict, two_prototypes());
  EXPECT_TRUE(head.run(grid, rpn.propose(grid)).empty());
}

TEST(RoiHeadTest, TwoObjectsTwoDetections) {
  tensor::Tensor grid({1, 32, 32});
  const Box a{4, 4, 10, 8}, b{20, 20, 26, 24};
  for (const Box& rect : {a, b}) {
    for (std::size_t y = static_cast<std::size_t>(rect.y1);
         y < static_cast<std::size_t>(rect.y2); ++y) {
      for (std::size_t x = static_cast<std::size_t>(rect.x1);
           x < static_cast<std::size_t>(rect.x2); ++x) {
        grid.at(0, y, x) = 0.6f;
      }
    }
  }
  const Rpn rpn;
  const RoiHead head(RoiHeadConfig{}, two_prototypes());
  const auto detections = head.run(grid, rpn.propose(grid));
  EXPECT_EQ(detections.size(), 2u);
}

}  // namespace
}  // namespace eco::detect
