#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace eco::tensor {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.numel(), 0u);
}

TEST(TensorTest, ShapeConstructorZeroFills) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.dim(), 2u);
  for (std::size_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, DataConstructorValidatesSize) {
  EXPECT_NO_THROW(Tensor({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(TensorTest, FactoryHelpers) {
  EXPECT_EQ(Tensor::scalar(3.5f)[0], 3.5f);
  EXPECT_EQ(Tensor::ones({4}).sum(), 4.0f);
  EXPECT_EQ(Tensor::full({2, 2}, 2.5f).sum(), 10.0f);
  const Tensor v = Tensor::from_vector({1, 2, 3});
  EXPECT_EQ(v.dim(), 1u);
  EXPECT_EQ(v.numel(), 3u);
}

TEST(TensorTest, MultiDimAccessRowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
  Tensor t3({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t3.at(1, 0, 1), 5.0f);
  Tensor t4({1, 2, 1, 2}, {0, 1, 2, 3});
  EXPECT_EQ(t4.at(0, 1, 0, 1), 3.0f);
}

TEST(TensorTest, ReshapePreservesDataAndValidatesNumel) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshaped({4, 2}), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
  const Tensor a({2}, {1, 2});
  const Tensor b({2}, {10, 20});
  EXPECT_TRUE((a + b).equals(Tensor({2}, {11, 22})));
  EXPECT_TRUE((b - a).equals(Tensor({2}, {9, 18})));
  EXPECT_TRUE((a * b).equals(Tensor({2}, {10, 40})));
  EXPECT_TRUE((a * 3.0f).equals(Tensor({2}, {3, 6})));
  EXPECT_TRUE((2.0f * a).equals(Tensor({2}, {2, 4})));
}

TEST(TensorTest, ArithmeticShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a *= b, std::invalid_argument);
}

TEST(TensorTest, Reductions) {
  const Tensor t({4}, {-1, 3, 0, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 1.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 1u);
  EXPECT_FLOAT_EQ(t.sum_squares(), 1 + 9 + 0 + 4);
}

TEST(TensorTest, AllClose) {
  const Tensor a({2}, {1.0f, 2.0f});
  const Tensor b({2}, {1.0f + 1e-6f, 2.0f});
  EXPECT_TRUE(a.allclose(b));
  EXPECT_FALSE(a.allclose(Tensor({2}, {1.1f, 2.0f})));
  EXPECT_FALSE(a.allclose(Tensor({1, 2}, {1.0f, 2.0f})));
}

TEST(TensorTest, FillAndZero) {
  Tensor t({3});
  t.fill(7.0f);
  EXPECT_FLOAT_EQ(t.sum(), 21.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t.sum(), 0.0f);
}

TEST(MatmulTest, KnownProduct) {
  const Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  const Tensor c = matmul(a, b);
  EXPECT_TRUE(c.equals(Tensor({2, 2}, {58, 64, 139, 154})));
}

TEST(MatmulTest, IdentityIsNoOp) {
  const Tensor a({2, 2}, {1, 2, 3, 4});
  const Tensor eye({2, 2}, {1, 0, 0, 1});
  EXPECT_TRUE(matmul(a, eye).equals(a));
  EXPECT_TRUE(matmul(eye, a).equals(a));
}

TEST(MatmulTest, ShapeMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 3})), std::invalid_argument);
  EXPECT_THROW(matmul(Tensor({4}), Tensor({4, 1})), std::invalid_argument);
}

TEST(ConcatChannelsTest, StacksAlongChannelAxis) {
  const Tensor a({1, 2, 2}, {1, 2, 3, 4});
  const Tensor b({2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
  const Tensor c = concat_channels({a, b});
  EXPECT_EQ(c.shape(), (Shape{3, 2, 2}));
  EXPECT_EQ(c.at(0, 0, 0), 1.0f);
  EXPECT_EQ(c.at(1, 0, 0), 5.0f);
  EXPECT_EQ(c.at(2, 1, 1), 12.0f);
}

TEST(ConcatChannelsTest, RejectsMismatchedSpatialDims) {
  EXPECT_THROW(concat_channels({Tensor({1, 2, 2}), Tensor({1, 3, 2})}),
               std::invalid_argument);
  EXPECT_THROW(concat_channels({}), std::invalid_argument);
  EXPECT_THROW(concat_channels({Tensor({4})}), std::invalid_argument);
}

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

}  // namespace
}  // namespace eco::tensor
