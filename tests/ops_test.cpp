#include "tensor/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eco::tensor {
namespace {

TEST(Conv2dTest, IdentityKernelReproducesInput) {
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.padding = 1;
  Tensor weight({1, 1, 3, 3});
  weight.at(0, 0, 1, 1) = 1.0f;  // identity
  const Tensor bias({1});
  const Tensor input({1, 4, 4}, {1, 2, 3, 4, 5, 6, 7, 8,
                                 9, 10, 11, 12, 13, 14, 15, 16});
  const Tensor out = conv2d(input, weight, bias, spec);
  EXPECT_TRUE(out.equals(input));
}

TEST(Conv2dTest, SumKernelCountsNeighbourhood) {
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.padding = 1;
  const Tensor weight = Tensor::ones({1, 1, 3, 3});
  const Tensor bias({1});
  const Tensor input = Tensor::ones({1, 3, 3});
  const Tensor out = conv2d(input, weight, bias, spec);
  // Centre sees 9 ones, corner sees 4 (padding zeros elsewhere).
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 6.0f);
}

TEST(Conv2dTest, StrideHalvesOutput) {
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  EXPECT_EQ(spec.out_extent(8), 4u);
  const Tensor weight({2, 1, 3, 3});
  const Tensor bias({2});
  const Tensor out = conv2d(Tensor({1, 8, 8}), weight, bias, spec);
  EXPECT_EQ(out.shape(), (Shape{2, 4, 4}));
}

TEST(Conv2dTest, BiasIsAdded) {
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.out_channels = 1;
  spec.kernel = 1;
  spec.padding = 0;
  const Tensor weight({1, 1, 1, 1}, {2.0f});
  const Tensor bias({1}, {0.5f});
  const Tensor input({1, 1, 1}, {3.0f});
  EXPECT_FLOAT_EQ(conv2d(input, weight, bias, spec)[0], 6.5f);
}

TEST(Conv2dTest, InputValidation) {
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.out_channels = 1;
  const Tensor weight({1, 2, 3, 3});
  const Tensor bias({1});
  EXPECT_THROW(conv2d(Tensor({1, 4, 4}), weight, bias, spec),
               std::invalid_argument);
}

TEST(ReluTest, ForwardAndBackward) {
  const Tensor x({4}, {-2, -0.5f, 0, 3});
  const Tensor y = relu(x);
  EXPECT_TRUE(y.equals(Tensor({4}, {0, 0, 0, 3})));
  const Tensor grad = relu_backward(x, Tensor({4}, {1, 1, 1, 1}));
  EXPECT_TRUE(grad.equals(Tensor({4}, {0, 0, 0, 1})));
}

TEST(MaxPoolTest, SelectsWindowMaximum) {
  const Tensor input({1, 4, 4}, {1, 2, 5, 6,
                                 3, 4, 7, 8,
                                 9, 10, 13, 14,
                                 11, 12, 15, 16});
  const Tensor out = maxpool2x2(input);
  EXPECT_EQ(out.shape(), (Shape{1, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 4.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 8.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 1), 16.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  const Tensor input({1, 2, 2}, {1, 4, 2, 3});
  const Tensor grad_out({1, 1, 1}, {5.0f});
  const Tensor grad = maxpool2x2_backward(input, grad_out);
  EXPECT_FLOAT_EQ(grad.at(0, 0, 1), 5.0f);  // 4 was the max
  EXPECT_FLOAT_EQ(grad.at(0, 0, 0), 0.0f);
}

TEST(GlobalAvgPoolTest, ComputesChannelMeans) {
  const Tensor input({2, 2, 2}, {1, 2, 3, 4, 10, 10, 10, 10});
  const Tensor out = global_avg_pool(input);
  EXPECT_FLOAT_EQ(out[0], 2.5f);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
  const Tensor grad = global_avg_pool_backward({2, 2, 2}, Tensor({2}, {4, 8}));
  EXPECT_FLOAT_EQ(grad.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 1, 1), 2.0f);
}

TEST(SoftmaxTest, SumsToOneAndOrders) {
  const Tensor logits({3}, {1.0f, 2.0f, 3.0f});
  const Tensor probs = softmax(logits);
  EXPECT_NEAR(probs.sum(), 1.0f, 1e-5f);
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(SoftmaxTest, NumericallyStableForLargeLogits) {
  const Tensor probs = softmax(Tensor({2}, {1000.0f, 1000.0f}));
  EXPECT_NEAR(probs[0], 0.5f, 1e-5f);
  EXPECT_NEAR(probs[1], 0.5f, 1e-5f);
}

TEST(SigmoidTest, KnownValues) {
  const Tensor out = sigmoid(Tensor({3}, {0.0f, 100.0f, -100.0f}));
  EXPECT_NEAR(out[0], 0.5f, 1e-6f);
  EXPECT_NEAR(out[1], 1.0f, 1e-6f);
  EXPECT_NEAR(out[2], 0.0f, 1e-6f);
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  const Tensor logits({3}, {20.0f, 0.0f, 0.0f});
  EXPECT_NEAR(cross_entropy(logits, 0), 0.0f, 1e-3f);
  EXPECT_GT(cross_entropy(logits, 1), 5.0f);
}

TEST(CrossEntropyTest, GradientIsSoftmaxMinusOneHot) {
  const Tensor logits({3}, {1.0f, 2.0f, 0.5f});
  Tensor grad;
  (void)cross_entropy(logits, 1, &grad);
  const Tensor probs = softmax(logits);
  EXPECT_NEAR(grad[0], probs[0], 1e-6f);
  EXPECT_NEAR(grad[1], probs[1] - 1.0f, 1e-6f);
  EXPECT_NEAR(grad[2], probs[2], 1e-6f);
}

TEST(SmoothL1Test, QuadraticInsideLinearOutside) {
  const Tensor zero({1}, {0.0f});
  // |diff| = 0.5 -> 0.5 * 0.25 = 0.125
  EXPECT_NEAR(smooth_l1(Tensor({1}, {0.5f}), zero), 0.125f, 1e-6f);
  // |diff| = 2 -> 2 - 0.5 = 1.5
  EXPECT_NEAR(smooth_l1(Tensor({1}, {2.0f}), zero), 1.5f, 1e-6f);
}

TEST(SmoothL1Test, GradientSignAndMagnitude) {
  Tensor grad;
  (void)smooth_l1(Tensor({2}, {0.5f, -3.0f}), Tensor({2}), &grad);
  EXPECT_NEAR(grad[0], 0.25f, 1e-6f);   // diff/n = 0.5/2
  EXPECT_NEAR(grad[1], -0.5f, 1e-6f);   // sign/n = -1/2
}

TEST(MseTest, ValueAndGradient) {
  Tensor grad;
  const float loss = mse(Tensor({2}, {1.0f, 3.0f}), Tensor({2}, {0.0f, 1.0f}),
                         &grad);
  EXPECT_NEAR(loss, (1.0f + 4.0f) / 2.0f, 1e-6f);
  EXPECT_NEAR(grad[0], 1.0f, 1e-6f);   // 2*1/2
  EXPECT_NEAR(grad[1], 2.0f, 1e-6f);   // 2*2/2
}

TEST(LinearTest, ForwardMatchesManualComputation) {
  const Tensor weight({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor bias({2}, {0.5f, -0.5f});
  const Tensor x({3}, {1, 1, 1});
  const Tensor y = linear(x, weight, bias);
  EXPECT_FLOAT_EQ(y[0], 6.5f);
  EXPECT_FLOAT_EQ(y[1], 14.5f);
}

TEST(LinearTest, BackwardAccumulatesGradients) {
  const Tensor weight({1, 2}, {2.0f, 3.0f});
  const Tensor x({2}, {5.0f, 7.0f});
  Tensor gw({1, 2}), gb({1});
  const Tensor gx = linear_backward(x, weight, Tensor({1}, {1.0f}), gw, gb);
  EXPECT_FLOAT_EQ(gx[0], 2.0f);
  EXPECT_FLOAT_EQ(gx[1], 3.0f);
  EXPECT_FLOAT_EQ(gw.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(gw.at(0, 1), 7.0f);
  EXPECT_FLOAT_EQ(gb[0], 1.0f);
}

// Parameterized sweep: conv output extents across kernel/stride/padding.
struct ConvCase {
  std::size_t kernel, stride, padding, in_extent, expected;
};
class ConvExtentSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvExtentSweep, OutExtentFormula) {
  const ConvCase c = GetParam();
  Conv2dSpec spec;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  EXPECT_EQ(spec.out_extent(c.in_extent), c.expected);
  // And the actual convolution agrees.
  spec.in_channels = 1;
  spec.out_channels = 1;
  const Tensor out = conv2d(Tensor({1, c.in_extent, c.in_extent}),
                            Tensor({1, 1, c.kernel, c.kernel}), Tensor({1}),
                            spec);
  EXPECT_EQ(out.size(1), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvExtentSweep,
    ::testing::Values(ConvCase{3, 1, 1, 8, 8}, ConvCase{3, 2, 1, 8, 4},
                      ConvCase{1, 1, 0, 5, 5}, ConvCase{5, 1, 2, 9, 9},
                      ConvCase{3, 2, 1, 24, 12}, ConvCase{7, 2, 3, 224, 112}));

}  // namespace
}  // namespace eco::tensor
