#include "tensor/optim.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace eco::tensor {
namespace {

Param make_param(std::vector<float> values) {
  Param p;
  // std::string{} sidesteps a GCC 12 -Wrestrict false positive on
  // assigning a literal to the NRVO'd member.
  p.name = std::string{"p"};
  p.value = Tensor::from_vector(std::move(values));
  p.zero_grad();
  return p;
}

TEST(SgdTest, PlainStepMovesAgainstGradient) {
  Param p = make_param({1.0f, -2.0f});
  p.grad = Tensor::from_vector({0.5f, -0.5f});
  Sgd opt({&p}, {.lr = 0.1f});
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], -1.95f);
}

TEST(SgdTest, MomentumAccumulates) {
  Param p = make_param({0.0f});
  Sgd opt({&p}, {.lr = 1.0f, .momentum = 0.9f});
  p.grad = Tensor::from_vector({1.0f});
  opt.step();  // v = 1, x = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad = Tensor::from_vector({1.0f});
  opt.step();  // v = 1.9, x = -2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(SgdTest, WeightDecayShrinksWeights) {
  Param p = make_param({10.0f});
  Sgd opt({&p}, {.lr = 0.1f, .weight_decay = 0.5f});
  p.grad.zero();
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  // minimize f(x) = (x - 3)^2; grad = 2(x - 3)
  Param p = make_param({0.0f});
  Sgd opt({&p}, {.lr = 0.1f});
  for (int i = 0; i < 200; ++i) {
    p.zero_grad();
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Param p = make_param({-5.0f});
  Adam opt({&p}, {.lr = 0.1f});
  for (int i = 0; i < 500; ++i) {
    p.zero_grad();
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(AdamTest, FirstStepIsLrSized) {
  // With bias correction, the first Adam step magnitude ~= lr.
  Param p = make_param({0.0f});
  Adam opt({&p}, {.lr = 0.01f});
  p.grad[0] = 42.0f;  // any positive gradient
  opt.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
}

TEST(AdamTest, SetLearningRateTakesEffect) {
  Param p = make_param({0.0f});
  Adam opt({&p}, {.lr = 0.01f});
  opt.set_learning_rate(0.0f);
  p.grad[0] = 1.0f;
  opt.step();
  EXPECT_FLOAT_EQ(p.value[0], 0.0f);
}

TEST(OptimizerTest, ZeroGradClearsAll) {
  Param a = make_param({1.0f}), b = make_param({2.0f});
  a.grad[0] = 5.0f;
  b.grad[0] = 7.0f;
  Sgd opt({&a, &b}, {});
  opt.zero_grad();
  EXPECT_FLOAT_EQ(a.grad[0], 0.0f);
  EXPECT_FLOAT_EQ(b.grad[0], 0.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Param p = make_param({0.0f, 0.0f});
  p.grad = Tensor::from_vector({3.0f, 4.0f});  // norm 5
  Sgd opt({&p}, {});
  opt.clip_grad_norm(1.0f);
  EXPECT_NEAR(p.grad[0], 0.6f, 1e-5f);
  EXPECT_NEAR(p.grad[1], 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipGradNormNoOpWhenUnder) {
  Param p = make_param({0.0f});
  p.grad[0] = 0.5f;
  Sgd opt({&p}, {});
  opt.clip_grad_norm(1.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.5f);
}

}  // namespace
}  // namespace eco::tensor
