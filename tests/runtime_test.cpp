#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "gating/knowledge_gate.hpp"
#include "gating/learned_gate.hpp"
#include "gating/loss_gate.hpp"
#include "runtime/budget.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/stream.hpp"
#include "runtime/thread_pool.hpp"

namespace eco::runtime {
namespace {

const core::EcoFusionEngine& engine() {
  static core::EcoFusionEngine instance;
  return instance;
}

GateFactory knowledge_factory() {
  return [] {
    return std::make_unique<gating::KnowledgeGate>(
        engine().default_knowledge_table(), engine().config_space().size());
  };
}

GateFactory oracle_factory() {
  return
      [] { return std::make_unique<gating::LossBasedGate>(
               engine().config_space().size()); };
}

// An (untrained) Deep gate: deterministic fixed-seed weights, and — unlike
// the knowledge/oracle gates — it actually pulls the stem features F, so it
// exercises the temporal stem cache.
GateFactory deep_factory() {
  return [] {
    gating::LearnedGateConfig config;
    config.num_configs = engine().config_space().size();
    return std::make_unique<gating::LearnedGate>(config);
  };
}

StreamConfig small_stream() {
  StreamConfig config;
  config.sequence.length = 8;
  config.sequences_per_scene = 1;
  config.seed = 99;
  return config;
}

TEST(ThreadPoolTest, RunsEveryTaskAndReportsWorkerIds) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> sum{0};
  std::atomic<std::size_t> max_worker{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&](std::size_t worker) {
      sum += 1;
      std::size_t seen = max_worker.load();
      while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 100);
  EXPECT_LT(max_worker.load(), 3u);
}

TEST(BoundedQueueTest, DeliversInOrderAndDrainsAfterClose) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  EXPECT_FALSE(queue.push(99));
  for (int i = 0; i < 4; ++i) {
    auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(FrameStreamTest, OrderIsDeterministicAndMixesScenes) {
  auto collect = [](const StreamConfig& config) {
    FrameStream stream(config);
    std::vector<StreamFrame> frames;
    while (auto frame = stream.next()) frames.push_back(std::move(*frame));
    return frames;
  };
  const StreamConfig config = small_stream();
  const auto a = collect(config);
  const auto b = collect(config);
  ASSERT_EQ(a.size(), dataset::kNumSceneTypes * config.sequence.length);
  ASSERT_EQ(a.size(), b.size());
  std::set<dataset::SceneType> scenes_in_first_round;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].scene, b[i].scene);
    EXPECT_EQ(a[i].sequence_id, b[i].sequence_id);
    EXPECT_EQ(a[i].frame.objects.size(), b[i].frame.objects.size());
    if (i < dataset::kNumSceneTypes) scenes_in_first_round.insert(a[i].scene);
  }
  // Round-robin lanes: the first |scenes| frames cover every scene type.
  EXPECT_EQ(scenes_in_first_round.size(), dataset::kNumSceneTypes);
}

TEST(FrameStreamTest, PrefetchDepthAndPoolNeverChangeTheStream) {
  // The stitch contract: inline generation (prefetch 0), a shallow pooled
  // window, and a window deeper than the lane count all deliver the
  // bitwise-identical stream, on pools of different sizes.
  StreamConfig base = small_stream();
  base.sequences_per_scene = 2;

  base.prefetch = 0;
  FrameStream inline_stream(base);
  std::vector<StreamFrame> expected;
  while (auto frame = inline_stream.next()) {
    expected.push_back(std::move(*frame));
  }
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(inline_stream.blocked_pops(), 0u);  // no tasks to wait on

  for (std::size_t depth : {2u, 5u, 64u}) {
    for (std::size_t workers : {1u, 4u}) {
      StreamConfig config = base;
      config.prefetch = depth;
      ThreadPool pool(workers);
      FrameStream stream(config);
      stream.attach_pool(pool);
      std::size_t i = 0;
      while (auto frame = stream.next()) {
        ASSERT_LT(i, expected.size());
        EXPECT_EQ(frame->index, expected[i].index);
        EXPECT_EQ(frame->sequence_id, expected[i].sequence_id);
        EXPECT_EQ(frame->scene, expected[i].scene);
        EXPECT_EQ(frame->frame.id, expected[i].frame.id);
        for (dataset::SensorKind kind : dataset::all_sensor_kinds()) {
          EXPECT_TRUE(
              frame->frame.grid(kind).equals(expected[i].frame.grid(kind)))
              << "depth " << depth << " workers " << workers << " frame " << i;
        }
        ++i;
      }
      EXPECT_EQ(i, expected.size());
    }
  }
}

TEST(FrameStreamTest, SeverityJitterVariesPerSequenceButIsStable) {
  StreamConfig config = small_stream();
  config.sequences_per_scene = 3;
  const auto a = sequence_params(config, dataset::SceneType::kRain, 0);
  const auto b = sequence_params(config, dataset::SceneType::kRain, 1);
  const auto a2 = sequence_params(config, dataset::SceneType::kRain, 0);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.vehicle_speed, b.vehicle_speed);
  EXPECT_EQ(a.seed, a2.seed);
  EXPECT_EQ(a.vehicle_speed, a2.vehicle_speed);
}

TEST(BudgetControllerTest, RaisesLambdaOverBudgetLowersUnder) {
  BudgetConfig config;
  config.target_j_per_frame = 2.0;
  config.initial_lambda = 0.5f;
  BudgetController controller(config);
  controller.observe(3.0);  // 50% over budget
  EXPECT_GT(controller.lambda(), 0.5f);
  const float raised = controller.lambda();
  controller.observe(1.0);  // 50% under budget
  EXPECT_LT(controller.lambda(), raised);
}

TEST(BudgetControllerTest, LambdaStaysClamped) {
  BudgetConfig config;
  config.target_j_per_frame = 1.0;
  config.initial_lambda = 0.9f;
  BudgetController controller(config);
  for (int i = 0; i < 50; ++i) controller.observe(10.0);
  EXPECT_LE(controller.lambda(), config.lambda_max);
  for (int i = 0; i < 100; ++i) controller.observe(0.0);
  EXPECT_GE(controller.lambda(), config.lambda_min);
}

TEST(DeadlineControllerTest, RaisesLambdaOverDeadlineLowersUnder) {
  DeadlineConfig config;
  config.target_ms_per_frame = 40.0;
  config.initial_lambda = 0.5f;
  DeadlineController controller(config);
  controller.observe(60.0);  // 50% over deadline
  EXPECT_GT(controller.lambda(), 0.5f);
  const float raised = controller.lambda();
  controller.observe(20.0);  // 50% under deadline
  EXPECT_LT(controller.lambda(), raised);
}

TEST(DeadlineControllerTest, LambdaStaysClamped) {
  DeadlineConfig config;
  config.target_ms_per_frame = 10.0;
  config.initial_lambda = 0.9f;
  DeadlineController controller(config);
  for (int i = 0; i < 50; ++i) controller.observe(100.0);
  EXPECT_LE(controller.lambda(), config.lambda_max);
  for (int i = 0; i < 100; ++i) controller.observe(0.0);
  EXPECT_GE(controller.lambda(), config.lambda_min);
}

TEST(ComposeControlWeightsTest, ShrinksLowerPriorityWeightOnly) {
  // No contention: both pass through.
  auto [e0, l0] = compose_control_weights(0.3f, 0.4f,
                                          ControlPriority::kDeadlineFirst);
  EXPECT_FLOAT_EQ(e0, 0.3f);
  EXPECT_FLOAT_EQ(l0, 0.4f);
  // Oversubscribed, deadline first: λ_L keeps its ask, λ_E yields.
  auto [e1, l1] = compose_control_weights(0.8f, 0.7f,
                                          ControlPriority::kDeadlineFirst);
  EXPECT_FLOAT_EQ(l1, 0.7f);
  EXPECT_FLOAT_EQ(e1, 0.3f);
  // Oversubscribed, energy first: λ_E keeps its ask, λ_L yields.
  auto [e2, l2] = compose_control_weights(0.8f, 0.7f,
                                          ControlPriority::kEnergyFirst);
  EXPECT_FLOAT_EQ(e2, 0.8f);
  EXPECT_FLOAT_EQ(l2, 0.2f);
}

PipelineReport run_pipeline(std::size_t workers, const GateFactory& gates,
                            std::optional<BudgetConfig> budget = std::nullopt,
                            StreamConfig stream_config = small_stream()) {
  PipelineConfig config;
  config.workers = workers;
  config.window = 16;
  config.budget = budget;
  config.joint.gamma = 2.0f;  // admit several candidates → λ_E has leverage
  StreamingPipeline pipeline(engine(), config);
  FrameStream stream(stream_config);
  return pipeline.run(stream, gates);
}

// The ISSUE's headline contract: N-thread output is bitwise identical to
// the 1-thread run on the same seeded stream.
TEST(StreamingPipelineTest, DeterministicAcrossWorkerCounts) {
  const PipelineReport one = run_pipeline(1, knowledge_factory());
  const PipelineReport four = run_pipeline(4, knowledge_factory());

  ASSERT_EQ(one.frames, four.frames);
  ASSERT_EQ(one.frame_stats.size(), four.frame_stats.size());
  for (std::size_t i = 0; i < one.frame_stats.size(); ++i) {
    const FrameStats& a = one.frame_stats[i];
    const FrameStats& b = four.frame_stats[i];
    EXPECT_EQ(a.stream_index, b.stream_index);
    EXPECT_EQ(a.scene, b.scene);
    EXPECT_EQ(a.config_index, b.config_index);
    EXPECT_EQ(a.loss, b.loss);          // bitwise
    EXPECT_EQ(a.energy_j, b.energy_j);  // bitwise
    EXPECT_EQ(a.detections, b.detections);
  }
  EXPECT_EQ(one.total_energy_j, four.total_energy_j);
  EXPECT_EQ(one.mean_loss, four.mean_loss);
  EXPECT_EQ(one.map, four.map);
  EXPECT_EQ(one.total_detections, four.total_detections);
  ASSERT_EQ(one.per_scene.size(), four.per_scene.size());
  for (std::size_t s = 0; s < one.per_scene.size(); ++s) {
    EXPECT_EQ(one.per_scene[s].scene, four.per_scene[s].scene);
    EXPECT_EQ(one.per_scene[s].frames, four.per_scene[s].frames);
    EXPECT_EQ(one.per_scene[s].mean_energy_j, four.per_scene[s].mean_energy_j);
    EXPECT_EQ(one.per_scene[s].map, four.per_scene[s].map);
  }
}

TEST(StreamingPipelineTest, ReportAggregatesAreConsistent) {
  const PipelineReport report = run_pipeline(2, knowledge_factory());
  ASSERT_GT(report.frames, 0u);
  double energy = 0.0;
  std::size_t scene_frames = 0;
  for (const FrameStats& stats : report.frame_stats) energy += stats.energy_j;
  for (const SceneReport& scene : report.per_scene) {
    scene_frames += scene.frames;
    EXPECT_GT(scene.mean_energy_j, 0.0);
  }
  EXPECT_DOUBLE_EQ(report.total_energy_j, energy);
  EXPECT_EQ(scene_frames, report.frames);
  EXPECT_EQ(report.per_scene.size(), dataset::kNumSceneTypes);
  EXPECT_GT(report.map, 0.0);
  EXPECT_GT(report.frames_per_second, 0.0);
  // Modeled latency drives the deterministic aggregates; wall-clock is
  // reported alongside, per frame, outside the determinism contract.
  double model_ms = 0.0;
  for (const FrameStats& stats : report.frame_stats) {
    EXPECT_GE(stats.wall_ms, 0.0);
    model_ms += stats.latency_ms;
  }
  EXPECT_DOUBLE_EQ(report.mean_latency_ms,
                   model_ms / static_cast<double>(report.frames));
  EXPECT_GT(report.mean_wall_ms, 0.0);
  // Frame results are retained for downstream aggregation.
  ASSERT_EQ(report.frame_results.size(), report.frame_stats.size());
}

// Closed-loop λ_E holds a joules-per-frame budget on a mixed stream: the
// pipeline converges to within 10% of a target chosen strictly between the
// greenest and dearest operating points.
TEST(StreamingPipelineTest, BudgetControllerConvergesToTarget) {
  StreamConfig stream_config = small_stream();
  stream_config.sequence.length = 10;
  stream_config.sequences_per_scene = 2;  // 160 frames → 10 control windows

  // Calibrate the achievable energy range with fixed λ_E runs.
  auto fixed_lambda_energy = [&](float lambda) {
    PipelineConfig config;
    config.workers = 2;
    config.window = 16;
    config.joint.gamma = 2.0f;
    config.joint.lambda_energy = lambda;
    config.keep_frame_results = false;
    StreamingPipeline pipeline(engine(), config);
    FrameStream stream(stream_config);  // calibrate on the budget run's stream
    return pipeline.run(stream, oracle_factory()).mean_energy_j;
  };
  const double dearest = fixed_lambda_energy(0.0f);
  const double greenest = fixed_lambda_energy(1.0f);
  ASSERT_LT(greenest, dearest);  // λ_E must have real leverage

  BudgetConfig budget;
  budget.target_j_per_frame = 0.5 * (greenest + dearest);
  budget.initial_lambda = 0.0f;
  budget.gain = 0.5f;
  budget.max_step = 0.25f;

  const PipelineReport report =
      run_pipeline(3, oracle_factory(), budget, stream_config);
  ASSERT_GE(report.lambda_trace.size(), 6u);

  // Steady state: mean energy over the final 4 control windows.
  const std::size_t window = 16;
  const std::size_t tail = 4 * window;
  ASSERT_GE(report.frame_stats.size(), tail);
  double tail_energy = 0.0;
  for (std::size_t i = report.frame_stats.size() - tail;
       i < report.frame_stats.size(); ++i) {
    tail_energy += report.frame_stats[i].energy_j;
  }
  const double steady = tail_energy / static_cast<double>(tail);
  EXPECT_NEAR(steady, budget.target_j_per_frame,
              0.10 * budget.target_j_per_frame);

  // And the trace itself is deterministic w.r.t. worker count.
  const PipelineReport replay =
      run_pipeline(1, oracle_factory(), budget, stream_config);
  ASSERT_EQ(report.lambda_trace.size(), replay.lambda_trace.size());
  for (std::size_t i = 0; i < report.lambda_trace.size(); ++i) {
    EXPECT_EQ(report.lambda_trace[i], replay.lambda_trace[i]);
  }
  EXPECT_EQ(report.total_energy_j, replay.total_energy_j);
}

// Mirror of the budget-convergence test for the deadline loop: closed-loop
// λ_L holds a modeled-ms-per-frame target chosen strictly between the
// fastest and slowest operating points, converging to within 5%.
TEST(StreamingPipelineTest, DeadlineControllerConvergesToTarget) {
  StreamConfig stream_config = small_stream();
  stream_config.sequence.length = 10;
  stream_config.sequences_per_scene = 2;  // 160 frames → 10 control windows

  // Calibrate the achievable latency range with fixed λ_L runs.
  auto fixed_lambda_latency = [&](float lambda) {
    PipelineConfig config;
    config.workers = 2;
    config.window = 16;
    config.joint.gamma = 2.0f;
    config.joint.lambda_energy = 0.0f;
    config.joint.lambda_latency = lambda;
    config.keep_frame_results = false;
    StreamingPipeline pipeline(engine(), config);
    FrameStream stream(stream_config);
    return pipeline.run(stream, oracle_factory()).mean_latency_ms;
  };
  const double slowest = fixed_lambda_latency(0.0f);
  const double fastest = fixed_lambda_latency(1.0f);
  ASSERT_LT(fastest, slowest);  // λ_L must have real leverage

  DeadlineConfig deadline;
  deadline.target_ms_per_frame = 0.5 * (fastest + slowest);
  deadline.initial_lambda = 0.0f;
  deadline.gain = 0.5f;
  deadline.max_step = 0.25f;

  auto run_deadline = [&](std::size_t workers) {
    PipelineConfig config;
    config.workers = workers;
    config.window = 16;
    config.joint.gamma = 2.0f;
    config.joint.lambda_energy = 0.0f;
    config.deadline = deadline;
    StreamingPipeline pipeline(engine(), config);
    FrameStream stream(stream_config);
    return pipeline.run(stream, oracle_factory());
  };
  const PipelineReport report = run_deadline(3);
  ASSERT_GE(report.deadline_trace.size(), 6u);

  // Steady state: mean modeled latency over the final 4 control windows.
  const std::size_t window = 16;
  const std::size_t tail = 4 * window;
  ASSERT_GE(report.frame_stats.size(), tail);
  double tail_ms = 0.0;
  for (std::size_t i = report.frame_stats.size() - tail;
       i < report.frame_stats.size(); ++i) {
    tail_ms += report.frame_stats[i].latency_ms;
  }
  const double steady = tail_ms / static_cast<double>(tail);
  EXPECT_NEAR(steady, deadline.target_ms_per_frame,
              0.05 * deadline.target_ms_per_frame);

  // The λ_L trajectory is worker-count invariant (it observes *modeled*
  // latency, never wall-clock).
  const PipelineReport replay = run_deadline(1);
  ASSERT_EQ(report.deadline_trace.size(), replay.deadline_trace.size());
  for (std::size_t i = 0; i < report.deadline_trace.size(); ++i) {
    EXPECT_EQ(report.deadline_trace[i], replay.deadline_trace[i]);
  }
  EXPECT_EQ(report.mean_latency_ms, replay.mean_latency_ms);
  for (const FrameStats& stats : report.frame_stats) {
    EXPECT_EQ(stats.lambda_latency,
              report.deadline_trace[stats.stream_index / window]);
  }
}

// Energy budget and deadline running simultaneously: the applied weights
// never oversubscribe the scoring budget, both traces advance in lockstep,
// and the composed trajectories stay worker-count deterministic.
TEST(StreamingPipelineTest, BudgetAndDeadlineControllersCompose) {
  StreamConfig stream_config = small_stream();
  stream_config.sequence.length = 10;
  stream_config.sequences_per_scene = 2;

  BudgetConfig budget;
  budget.target_j_per_frame = 1.8;
  budget.initial_lambda = 0.0f;
  budget.gain = 0.5f;
  budget.max_step = 0.25f;
  DeadlineConfig deadline;
  deadline.target_ms_per_frame = 38.0;
  deadline.initial_lambda = 0.0f;
  deadline.gain = 0.5f;
  deadline.max_step = 0.25f;

  auto run_both = [&](std::size_t workers) {
    PipelineConfig config;
    config.workers = workers;
    config.window = 16;
    config.joint.gamma = 2.0f;
    config.budget = budget;
    config.deadline = deadline;
    config.priority = ControlPriority::kDeadlineFirst;
    StreamingPipeline pipeline(engine(), config);
    FrameStream stream(stream_config);
    return pipeline.run(stream, oracle_factory());
  };
  const PipelineReport report = run_both(2);
  ASSERT_EQ(report.lambda_trace.size(), report.deadline_trace.size());
  ASSERT_GT(report.lambda_trace.size(), 0u);
  for (std::size_t i = 0; i < report.lambda_trace.size(); ++i) {
    EXPECT_GE(report.lambda_trace[i], 0.0f);
    EXPECT_GE(report.deadline_trace[i], 0.0f);
    EXPECT_LE(report.lambda_trace[i] + report.deadline_trace[i], 1.0f);
  }
  const PipelineReport replay = run_both(1);
  EXPECT_EQ(report.total_energy_j, replay.total_energy_j);
  EXPECT_EQ(report.mean_latency_ms, replay.mean_latency_ms);
  ASSERT_EQ(report.lambda_trace.size(), replay.lambda_trace.size());
  for (std::size_t i = 0; i < report.lambda_trace.size(); ++i) {
    EXPECT_EQ(report.lambda_trace[i], replay.lambda_trace[i]);
    EXPECT_EQ(report.deadline_trace[i], replay.deadline_trace[i]);
  }
}

PipelineReport run_pipeline_exec(std::size_t workers, const GateFactory& gates,
                                 bool cache, bool batch) {
  PipelineConfig config;
  config.workers = workers;
  config.window = 16;
  config.joint.gamma = 2.0f;
  config.temporal_stem_cache = cache;
  config.batch_branches = batch;
  StreamingPipeline pipeline(engine(), config);
  FrameStream stream(small_stream());
  return pipeline.run(stream, gates);
}

/// Bitwise equality of everything the determinism contract covers.
/// `compare_stem_source` is off when comparing cache-on vs cache-off runs
/// (the cache changes *how* F was obtained, never its value).
void expect_reports_equal(const PipelineReport& a, const PipelineReport& b,
                          bool compare_stem_source) {
  ASSERT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_EQ(a.map, b.map);
  EXPECT_EQ(a.total_detections, b.total_detections);
  EXPECT_EQ(a.final_lambda, b.final_lambda);
  EXPECT_EQ(a.final_lambda_latency, b.final_lambda_latency);
  ASSERT_EQ(a.lambda_trace.size(), b.lambda_trace.size());
  for (std::size_t i = 0; i < a.lambda_trace.size(); ++i) {
    EXPECT_EQ(a.lambda_trace[i], b.lambda_trace[i]);
  }
  ASSERT_EQ(a.deadline_trace.size(), b.deadline_trace.size());
  for (std::size_t i = 0; i < a.deadline_trace.size(); ++i) {
    EXPECT_EQ(a.deadline_trace[i], b.deadline_trace[i]);
  }
  ASSERT_EQ(a.frame_stats.size(), b.frame_stats.size());
  for (std::size_t i = 0; i < a.frame_stats.size(); ++i) {
    const FrameStats& x = a.frame_stats[i];
    const FrameStats& y = b.frame_stats[i];
    EXPECT_EQ(x.stream_index, y.stream_index);
    EXPECT_EQ(x.scene, y.scene);
    EXPECT_EQ(x.config_index, y.config_index);
    EXPECT_EQ(x.loss, y.loss);          // bitwise
    EXPECT_EQ(x.energy_j, y.energy_j);  // bitwise
    EXPECT_EQ(x.latency_ms, y.latency_ms);
    EXPECT_EQ(x.lambda_energy, y.lambda_energy);
    EXPECT_EQ(x.lambda_latency, y.lambda_latency);
    EXPECT_EQ(x.detections, y.detections);
    EXPECT_EQ(x.batch_size, y.batch_size);
    EXPECT_EQ(x.branch_runs, y.branch_runs);
    EXPECT_EQ(x.channel_scans_requested, y.channel_scans_requested);
    EXPECT_EQ(x.channel_scans_unique, y.channel_scans_unique);
    if (compare_stem_source) {
      EXPECT_EQ(x.stem_source, y.stem_source);
    }
  }
  ASSERT_EQ(a.per_scene.size(), b.per_scene.size());
  for (std::size_t s = 0; s < a.per_scene.size(); ++s) {
    EXPECT_EQ(a.per_scene[s].scene, b.per_scene[s].scene);
    EXPECT_EQ(a.per_scene[s].frames, b.per_scene[s].frames);
    EXPECT_EQ(a.per_scene[s].mean_loss, b.per_scene[s].mean_loss);
    EXPECT_EQ(a.per_scene[s].mean_energy_j, b.per_scene[s].mean_energy_j);
    EXPECT_EQ(a.per_scene[s].map, b.per_scene[s].map);
    EXPECT_EQ(a.per_scene[s].mean_batch, b.per_scene[s].mean_batch);
    if (compare_stem_source) {
      EXPECT_EQ(a.per_scene[s].stem_cache_hits, b.per_scene[s].stem_cache_hits);
      EXPECT_EQ(a.per_scene[s].stem_cache_misses,
                b.per_scene[s].stem_cache_misses);
    }
  }
  EXPECT_EQ(a.exec.branch_runs, b.exec.branch_runs);
  EXPECT_EQ(a.exec.channel_scans_requested, b.exec.channel_scans_requested);
  EXPECT_EQ(a.exec.channel_scans_unique, b.exec.channel_scans_unique);
  EXPECT_EQ(a.exec.batches, b.exec.batches);
  EXPECT_EQ(a.exec.batched_frames, b.exec.batched_frames);
  EXPECT_EQ(a.exec.max_batch, b.exec.max_batch);
  EXPECT_EQ(a.exec.mean_batch, b.exec.mean_batch);
  if (compare_stem_source) {
    EXPECT_EQ(a.exec.stems_skipped, b.exec.stems_skipped);
    EXPECT_EQ(a.exec.stems_computed, b.exec.stems_computed);
    EXPECT_EQ(a.exec.stem_cache_hits, b.exec.stem_cache_hits);
    EXPECT_EQ(a.exec.stem_cache_misses, b.exec.stem_cache_misses);
  }
}

// The temporal stem cache is a pure optimization: reports with it on and
// off are bitwise identical (a Deep gate pulls F every frame, so the cache
// is genuinely on the path here).
TEST(StreamingPipelineTest, StemCacheOnOffReportsBitwiseIdentical) {
  const PipelineReport off =
      run_pipeline_exec(2, deep_factory(), /*cache=*/false, /*batch=*/true);
  const PipelineReport on =
      run_pipeline_exec(2, deep_factory(), /*cache=*/true, /*batch=*/true);
  expect_reports_equal(off, on, /*compare_stem_source=*/false);
  // And the cache really engaged: one miss per sequence, hits elsewhere.
  EXPECT_EQ(on.exec.stem_cache_misses, dataset::kNumSceneTypes);
  EXPECT_EQ(on.exec.stem_cache_hits, on.frames - dataset::kNumSceneTypes);
  EXPECT_EQ(off.exec.stems_computed, off.frames);
}

// So is batched branch execution.
TEST(StreamingPipelineTest, BatchOnOffReportsBitwiseIdentical) {
  const PipelineReport off =
      run_pipeline_exec(2, knowledge_factory(), /*cache=*/true,
                        /*batch=*/false);
  const PipelineReport on =
      run_pipeline_exec(2, knowledge_factory(), /*cache=*/true,
                        /*batch=*/true);
  expect_reports_equal(off, on, /*compare_stem_source=*/true);
  EXPECT_GT(on.exec.batched_frames, 0u);
  EXPECT_GT(on.exec.max_batch, 1u);
}

// 1-vs-N worker determinism with caching AND batching enabled, including
// every exec counter.
TEST(StreamingPipelineTest, DeterministicAcrossWorkersWithCacheAndBatch) {
  const PipelineReport one =
      run_pipeline_exec(1, deep_factory(), /*cache=*/true, /*batch=*/true);
  const PipelineReport four =
      run_pipeline_exec(4, deep_factory(), /*cache=*/true, /*batch=*/true);
  expect_reports_equal(one, four, /*compare_stem_source=*/true);
}

// Even with a stem-cache capacity far below the live sequence count,
// eviction stays deterministic (it happens at window barriers, from stream
// order alone) — counters must not depend on worker timing.
TEST(StreamingPipelineTest, TinyStemCacheStaysDeterministic) {
  auto run = [](std::size_t workers) {
    PipelineConfig config;
    config.workers = workers;
    config.window = 16;
    config.joint.gamma = 2.0f;
    config.stem_cache_sequences = 1;  // pipeline floors this at 2x window
    StreamingPipeline pipeline(engine(), config);
    FrameStream stream(small_stream());
    return pipeline.run(stream, deep_factory());
  };
  const PipelineReport one = run(1);
  const PipelineReport four = run(4);
  expect_reports_equal(one, four, /*compare_stem_source=*/true);
  EXPECT_GT(one.exec.stem_cache_hits, 0u);
}

TEST(StreamingPipelineTest, ExecCountersAreConsistent) {
  const PipelineReport report =
      run_pipeline_exec(2, knowledge_factory(), /*cache=*/true,
                        /*batch=*/true);
  ASSERT_GT(report.frames, 0u);
  // The knowledge gate never pulls F: stems skipped on every frame.
  EXPECT_EQ(report.exec.stems_skipped, report.frames);
  EXPECT_EQ(report.exec.stem_cache_hits, 0u);
  EXPECT_EQ(report.exec.stem_cache_misses, 0u);
  EXPECT_GT(report.exec.branch_runs, 0u);
  ASSERT_GT(report.exec.batches, 0u);
  EXPECT_DOUBLE_EQ(report.exec.mean_batch,
                   static_cast<double>(report.frames) /
                       static_cast<double>(report.exec.batches));
  std::size_t batched = 0;
  double batch_sum = 0.0;
  for (const FrameStats& stats : report.frame_stats) {
    EXPECT_GE(stats.batch_size, 1u);
    EXPECT_GT(stats.branch_runs, 0u);
    if (stats.batch_size > 1) ++batched;
    batch_sum += static_cast<double>(stats.batch_size);
  }
  EXPECT_EQ(report.exec.batched_frames, batched);
  // Per-scene mean batch sizes aggregate the same per-frame data.
  double scene_batch_sum = 0.0;
  for (const SceneReport& scene : report.per_scene) {
    scene_batch_sum += scene.mean_batch * static_cast<double>(scene.frames);
  }
  EXPECT_NEAR(scene_batch_sum, batch_sum, 1e-9);
}

}  // namespace
}  // namespace eco::runtime
