#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "core/engine.hpp"
#include "gating/knowledge_gate.hpp"
#include "gating/loss_gate.hpp"
#include "runtime/budget.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/stream.hpp"
#include "runtime/thread_pool.hpp"

namespace eco::runtime {
namespace {

const core::EcoFusionEngine& engine() {
  static core::EcoFusionEngine instance;
  return instance;
}

GateFactory knowledge_factory() {
  return [] {
    return std::make_unique<gating::KnowledgeGate>(
        engine().default_knowledge_table(), engine().config_space().size());
  };
}

GateFactory oracle_factory() {
  return
      [] { return std::make_unique<gating::LossBasedGate>(
               engine().config_space().size()); };
}

StreamConfig small_stream() {
  StreamConfig config;
  config.sequence.length = 8;
  config.sequences_per_scene = 1;
  config.seed = 99;
  config.queue_capacity = 8;
  return config;
}

TEST(ThreadPoolTest, RunsEveryTaskAndReportsWorkerIds) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> sum{0};
  std::atomic<std::size_t> max_worker{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&](std::size_t worker) {
      sum += 1;
      std::size_t seen = max_worker.load();
      while (worker > seen && !max_worker.compare_exchange_weak(seen, worker)) {
      }
    });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 100);
  EXPECT_LT(max_worker.load(), 3u);
}

TEST(BoundedQueueTest, DeliversInOrderAndDrainsAfterClose) {
  BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.push(i));
  queue.close();
  EXPECT_FALSE(queue.push(99));
  for (int i = 0; i < 4; ++i) {
    auto value = queue.pop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(FrameStreamTest, OrderIsDeterministicAndMixesScenes) {
  auto collect = [](const StreamConfig& config) {
    FrameStream stream(config);
    std::vector<StreamFrame> frames;
    while (auto frame = stream.next()) frames.push_back(std::move(*frame));
    return frames;
  };
  const StreamConfig config = small_stream();
  const auto a = collect(config);
  const auto b = collect(config);
  ASSERT_EQ(a.size(), dataset::kNumSceneTypes * config.sequence.length);
  ASSERT_EQ(a.size(), b.size());
  std::set<dataset::SceneType> scenes_in_first_round;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].scene, b[i].scene);
    EXPECT_EQ(a[i].sequence_id, b[i].sequence_id);
    EXPECT_EQ(a[i].frame.objects.size(), b[i].frame.objects.size());
    if (i < dataset::kNumSceneTypes) scenes_in_first_round.insert(a[i].scene);
  }
  // Round-robin lanes: the first |scenes| frames cover every scene type.
  EXPECT_EQ(scenes_in_first_round.size(), dataset::kNumSceneTypes);
}

TEST(FrameStreamTest, SeverityJitterVariesPerSequenceButIsStable) {
  StreamConfig config = small_stream();
  config.sequences_per_scene = 3;
  const auto a = sequence_params(config, dataset::SceneType::kRain, 0);
  const auto b = sequence_params(config, dataset::SceneType::kRain, 1);
  const auto a2 = sequence_params(config, dataset::SceneType::kRain, 0);
  EXPECT_NE(a.seed, b.seed);
  EXPECT_NE(a.vehicle_speed, b.vehicle_speed);
  EXPECT_EQ(a.seed, a2.seed);
  EXPECT_EQ(a.vehicle_speed, a2.vehicle_speed);
}

TEST(BudgetControllerTest, RaisesLambdaOverBudgetLowersUnder) {
  BudgetConfig config;
  config.target_j_per_frame = 2.0;
  config.initial_lambda = 0.5f;
  BudgetController controller(config);
  controller.observe(3.0);  // 50% over budget
  EXPECT_GT(controller.lambda(), 0.5f);
  const float raised = controller.lambda();
  controller.observe(1.0);  // 50% under budget
  EXPECT_LT(controller.lambda(), raised);
}

TEST(BudgetControllerTest, LambdaStaysClamped) {
  BudgetConfig config;
  config.target_j_per_frame = 1.0;
  config.initial_lambda = 0.9f;
  BudgetController controller(config);
  for (int i = 0; i < 50; ++i) controller.observe(10.0);
  EXPECT_LE(controller.lambda(), config.lambda_max);
  for (int i = 0; i < 100; ++i) controller.observe(0.0);
  EXPECT_GE(controller.lambda(), config.lambda_min);
}

PipelineReport run_pipeline(std::size_t workers, const GateFactory& gates,
                            std::optional<BudgetConfig> budget = std::nullopt,
                            StreamConfig stream_config = small_stream()) {
  PipelineConfig config;
  config.workers = workers;
  config.window = 16;
  config.budget = budget;
  config.joint.gamma = 2.0f;  // admit several candidates → λ_E has leverage
  StreamingPipeline pipeline(engine(), config);
  FrameStream stream(stream_config);
  return pipeline.run(stream, gates);
}

// The ISSUE's headline contract: N-thread output is bitwise identical to
// the 1-thread run on the same seeded stream.
TEST(StreamingPipelineTest, DeterministicAcrossWorkerCounts) {
  const PipelineReport one = run_pipeline(1, knowledge_factory());
  const PipelineReport four = run_pipeline(4, knowledge_factory());

  ASSERT_EQ(one.frames, four.frames);
  ASSERT_EQ(one.frame_stats.size(), four.frame_stats.size());
  for (std::size_t i = 0; i < one.frame_stats.size(); ++i) {
    const FrameStats& a = one.frame_stats[i];
    const FrameStats& b = four.frame_stats[i];
    EXPECT_EQ(a.stream_index, b.stream_index);
    EXPECT_EQ(a.scene, b.scene);
    EXPECT_EQ(a.config_index, b.config_index);
    EXPECT_EQ(a.loss, b.loss);          // bitwise
    EXPECT_EQ(a.energy_j, b.energy_j);  // bitwise
    EXPECT_EQ(a.detections, b.detections);
  }
  EXPECT_EQ(one.total_energy_j, four.total_energy_j);
  EXPECT_EQ(one.mean_loss, four.mean_loss);
  EXPECT_EQ(one.map, four.map);
  EXPECT_EQ(one.total_detections, four.total_detections);
  ASSERT_EQ(one.per_scene.size(), four.per_scene.size());
  for (std::size_t s = 0; s < one.per_scene.size(); ++s) {
    EXPECT_EQ(one.per_scene[s].scene, four.per_scene[s].scene);
    EXPECT_EQ(one.per_scene[s].frames, four.per_scene[s].frames);
    EXPECT_EQ(one.per_scene[s].mean_energy_j, four.per_scene[s].mean_energy_j);
    EXPECT_EQ(one.per_scene[s].map, four.per_scene[s].map);
  }
}

TEST(StreamingPipelineTest, ReportAggregatesAreConsistent) {
  const PipelineReport report = run_pipeline(2, knowledge_factory());
  ASSERT_GT(report.frames, 0u);
  double energy = 0.0;
  std::size_t scene_frames = 0;
  for (const FrameStats& stats : report.frame_stats) energy += stats.energy_j;
  for (const SceneReport& scene : report.per_scene) {
    scene_frames += scene.frames;
    EXPECT_GT(scene.mean_energy_j, 0.0);
  }
  EXPECT_DOUBLE_EQ(report.total_energy_j, energy);
  EXPECT_EQ(scene_frames, report.frames);
  EXPECT_EQ(report.per_scene.size(), dataset::kNumSceneTypes);
  EXPECT_GT(report.map, 0.0);
  EXPECT_GT(report.frames_per_second, 0.0);
}

// Closed-loop λ_E holds a joules-per-frame budget on a mixed stream: the
// pipeline converges to within 10% of a target chosen strictly between the
// greenest and dearest operating points.
TEST(StreamingPipelineTest, BudgetControllerConvergesToTarget) {
  StreamConfig stream_config = small_stream();
  stream_config.sequence.length = 10;
  stream_config.sequences_per_scene = 2;  // 160 frames → 10 control windows

  // Calibrate the achievable energy range with fixed λ_E runs.
  auto fixed_lambda_energy = [&](float lambda) {
    PipelineConfig config;
    config.workers = 2;
    config.window = 16;
    config.joint.gamma = 2.0f;
    config.joint.lambda_energy = lambda;
    config.keep_frame_results = false;
    StreamingPipeline pipeline(engine(), config);
    FrameStream stream(stream_config);  // calibrate on the budget run's stream
    return pipeline.run(stream, oracle_factory()).mean_energy_j;
  };
  const double dearest = fixed_lambda_energy(0.0f);
  const double greenest = fixed_lambda_energy(1.0f);
  ASSERT_LT(greenest, dearest);  // λ_E must have real leverage

  BudgetConfig budget;
  budget.target_j_per_frame = 0.5 * (greenest + dearest);
  budget.initial_lambda = 0.0f;
  budget.gain = 0.5f;
  budget.max_step = 0.25f;

  const PipelineReport report =
      run_pipeline(3, oracle_factory(), budget, stream_config);
  ASSERT_GE(report.lambda_trace.size(), 6u);

  // Steady state: mean energy over the final 4 control windows.
  const std::size_t window = 16;
  const std::size_t tail = 4 * window;
  ASSERT_GE(report.frame_stats.size(), tail);
  double tail_energy = 0.0;
  for (std::size_t i = report.frame_stats.size() - tail;
       i < report.frame_stats.size(); ++i) {
    tail_energy += report.frame_stats[i].energy_j;
  }
  const double steady = tail_energy / static_cast<double>(tail);
  EXPECT_NEAR(steady, budget.target_j_per_frame,
              0.10 * budget.target_j_per_frame);

  // And the trace itself is deterministic w.r.t. worker count.
  const PipelineReport replay =
      run_pipeline(1, oracle_factory(), budget, stream_config);
  ASSERT_EQ(report.lambda_trace.size(), replay.lambda_trace.size());
  for (std::size_t i = 0; i < report.lambda_trace.size(); ++i) {
    EXPECT_EQ(report.lambda_trace[i], replay.lambda_trace[i]);
  }
  EXPECT_EQ(report.total_energy_j, replay.total_energy_j);
}

}  // namespace
}  // namespace eco::runtime
