#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace eco::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all values hit
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(14);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.poisson(2.5);
  EXPECT_NEAR(total / n, 2.5, 0.1);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(15);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(16);
  double total = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += rng.poisson(50.0);
  EXPECT_NEAR(total / n, 50.0, 1.0);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.exponential(4.0);
  EXPECT_NEAR(total / n, 0.25, 0.02);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(18);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.categorical({1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.50, 0.02);
}

TEST(RngTest, CategoricalIgnoresNegativeWeights) {
  Rng rng(19);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.categorical({-1.0, 0.0, 5.0}), 2u);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> values = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(21);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(1);  // parent state advanced -> different child
  EXPECT_NE(child_a.next_u64(), child_b.next_u64());
}

TEST(RngTest, HashCombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
  EXPECT_EQ(hash_combine(1, 2), hash_combine(1, 2));
}

TEST(RngTest, IndexAlwaysBelowBound) {
  Rng rng(22);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

// Property sweep: moment sanity across many seeds.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanNearHalf) {
  Rng rng(GetParam());
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.uniform();
  EXPECT_NEAR(total / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, ReproducibleSequence) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ull, 1ull, 42ull, 2022ull,
                                           0xFFFFFFFFFFFFFFFFull,
                                           0xDEADBEEFull));

}  // namespace
}  // namespace eco::util
