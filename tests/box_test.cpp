#include "detect/box.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace eco::detect {
namespace {

TEST(BoxTest, GeometryAccessors) {
  const Box b{1.0f, 2.0f, 4.0f, 6.0f};
  EXPECT_FLOAT_EQ(b.width(), 3.0f);
  EXPECT_FLOAT_EQ(b.height(), 4.0f);
  EXPECT_FLOAT_EQ(b.area(), 12.0f);
  EXPECT_FLOAT_EQ(b.cx(), 2.5f);
  EXPECT_FLOAT_EQ(b.cy(), 4.0f);
  EXPECT_TRUE(b.valid());
}

TEST(BoxTest, DegenerateBoxHasZeroArea) {
  const Box b{3.0f, 3.0f, 3.0f, 5.0f};
  EXPECT_FLOAT_EQ(b.area(), 0.0f);
  EXPECT_FALSE(b.valid());
  const Box inverted{5.0f, 5.0f, 1.0f, 1.0f};
  EXPECT_FLOAT_EQ(inverted.area(), 0.0f);
}

TEST(BoxTest, ClippedRespectsBounds) {
  const Box b{-2.0f, -3.0f, 10.0f, 12.0f};
  const Box c = b.clipped(8.0f, 9.0f);
  EXPECT_FLOAT_EQ(c.x1, 0.0f);
  EXPECT_FLOAT_EQ(c.y1, 0.0f);
  EXPECT_FLOAT_EQ(c.x2, 8.0f);
  EXPECT_FLOAT_EQ(c.y2, 9.0f);
}

TEST(IouTest, IdenticalBoxesHaveIouOne) {
  const Box b{1, 1, 5, 4};
  EXPECT_FLOAT_EQ(iou(b, b), 1.0f);
}

TEST(IouTest, DisjointBoxesHaveIouZero) {
  EXPECT_FLOAT_EQ(iou(Box{0, 0, 2, 2}, Box{3, 3, 5, 5}), 0.0f);
  // Touching edges count as zero intersection.
  EXPECT_FLOAT_EQ(iou(Box{0, 0, 2, 2}, Box{2, 0, 4, 2}), 0.0f);
}

TEST(IouTest, KnownOverlap) {
  // 2x2 and 2x2 overlapping in a 1x1 region: IoU = 1 / (4+4-1).
  EXPECT_NEAR(iou(Box{0, 0, 2, 2}, Box{1, 1, 3, 3}), 1.0f / 7.0f, 1e-6f);
}

TEST(IouTest, ContainedBox) {
  // 1x1 inside 4x4: IoU = 1/16.
  EXPECT_NEAR(iou(Box{0, 0, 4, 4}, Box{1, 1, 2, 2}), 1.0f / 16.0f, 1e-6f);
}

TEST(IntersectionAreaTest, MatchesManual) {
  EXPECT_FLOAT_EQ(intersection_area(Box{0, 0, 4, 4}, Box{2, 1, 6, 3}), 4.0f);
  EXPECT_FLOAT_EQ(intersection_area(Box{0, 0, 1, 1}, Box{5, 5, 6, 6}), 0.0f);
}

// Property tests over random boxes.
class IouPropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IouPropertySweep, SymmetricBoundedAndConsistent) {
  util::Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    auto random_box = [&] {
      Box b;
      b.x1 = rng.uniform_f(0.0f, 40.0f);
      b.y1 = rng.uniform_f(0.0f, 40.0f);
      b.x2 = b.x1 + rng.uniform_f(0.5f, 12.0f);
      b.y2 = b.y1 + rng.uniform_f(0.5f, 12.0f);
      return b;
    };
    const Box a = random_box(), b = random_box();
    const float ab = iou(a, b);
    EXPECT_GE(ab, 0.0f);
    EXPECT_LE(ab, 1.0f);
    EXPECT_FLOAT_EQ(ab, iou(b, a));                       // symmetry
    EXPECT_FLOAT_EQ(iou(a, a), 1.0f);                     // reflexivity
    EXPECT_LE(intersection_area(a, b), std::min(a.area(), b.area()) + 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouPropertySweep,
                         ::testing::Values(3ull, 31ull, 314ull));

}  // namespace
}  // namespace eco::detect
