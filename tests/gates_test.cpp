#include <gtest/gtest.h>

#include "gating/knowledge_gate.hpp"
#include "gating/learned_gate.hpp"
#include "gating/loss_gate.hpp"
#include "util/rng.hpp"

namespace eco::gating {
namespace {

TEST(KnowledgeGateTest, PinsTableEntryPerScene) {
  KnowledgeTable table{};
  table[static_cast<std::size_t>(dataset::SceneType::kFog)] = 3;
  table[static_cast<std::size_t>(dataset::SceneType::kCity)] = 1;
  KnowledgeGate gate(table, 5);

  GateInput input;
  input.scene = dataset::SceneType::kFog;
  const auto fog_losses = gate.predict_losses(input);
  EXPECT_EQ(fog_losses.size(), 5u);
  EXPECT_FLOAT_EQ(fog_losses[3], 0.0f);
  EXPECT_GT(fog_losses[0], 1e5f);

  input.scene = dataset::SceneType::kCity;
  EXPECT_FLOAT_EQ(gate.predict_losses(input)[1], 0.0f);
  EXPECT_EQ(gate.choice_for(dataset::SceneType::kCity), 1u);
}

TEST(KnowledgeGateTest, PropertiesMatchPaper) {
  KnowledgeGate gate(KnowledgeTable{}, 3);
  EXPECT_FALSE(gate.tunable());       // §5.1: not tunable by λ_E
  EXPECT_FALSE(gate.needs_oracle());
  EXPECT_EQ(gate.name(), "Knowledge");
  EXPECT_EQ(gate.complexity(), energy::GateComplexity::kKnowledge);
}

TEST(KnowledgeGateTest, RejectsOutOfRangeChoices) {
  KnowledgeTable table{};
  table[0] = 7;
  EXPECT_THROW(KnowledgeGate(table, 5), std::invalid_argument);
}

TEST(LossBasedGateTest, ReturnsOracleLossesVerbatim) {
  LossBasedGate gate(3);
  const std::vector<float> oracle = {0.5f, 0.2f, 0.9f};
  GateInput input;
  input.oracle_losses = &oracle;
  EXPECT_EQ(gate.predict_losses(input), oracle);
  EXPECT_TRUE(gate.needs_oracle());
  EXPECT_EQ(gate.name(), "Loss-Based");
}

TEST(LossBasedGateTest, MissingOracleThrows) {
  LossBasedGate gate(3);
  GateInput input;
  EXPECT_THROW((void)gate.predict_losses(input), std::invalid_argument);
  const std::vector<float> wrong_arity = {0.1f};
  input.oracle_losses = &wrong_arity;
  EXPECT_THROW((void)gate.predict_losses(input), std::invalid_argument);
}

LearnedGateConfig small_gate_config(bool attention) {
  LearnedGateConfig config;
  config.in_channels = 8;
  config.in_height = 16;
  config.in_width = 16;
  config.hidden_channels = 8;
  config.mlp_hidden = 16;
  config.num_configs = 4;
  config.use_attention = attention;
  return config;
}

TEST(LearnedGateTest, OutputArityMatchesConfigSpace) {
  LearnedGate gate(small_gate_config(false));
  tensor::Tensor features({8, 16, 16});
  const auto out = gate.forward(features);
  EXPECT_EQ(out.numel(), 4u);
  GateInput input;
  input.features = &features;
  EXPECT_EQ(gate.predict_losses(input).size(), 4u);
}

TEST(LearnedGateTest, NamesAndComplexityReflectVariant) {
  LearnedGate deep(small_gate_config(false));
  LearnedGate attention(small_gate_config(true));
  EXPECT_EQ(deep.name(), "Deep");
  EXPECT_EQ(attention.name(), "Attention");
  EXPECT_EQ(deep.complexity(), energy::GateComplexity::kDeep);
  EXPECT_EQ(attention.complexity(), energy::GateComplexity::kAttention);
  // The attention variant has strictly more parameters.
  EXPECT_GT(attention.parameters().size(), deep.parameters().size());
}

TEST(LearnedGateTest, MissingFeaturesThrows) {
  LearnedGate gate(small_gate_config(false));
  GateInput input;
  EXPECT_THROW((void)gate.predict_losses(input), std::invalid_argument);
}

TEST(LearnedGateTest, WrongFeatureShapeThrows) {
  LearnedGate gate(small_gate_config(false));
  tensor::Tensor bad({4, 16, 16});
  EXPECT_THROW((void)gate.forward(bad), std::invalid_argument);
}

TEST(LearnedGateTest, TrainingStepValidatesTargets) {
  LearnedGate gate(small_gate_config(false));
  tensor::Tensor features({8, 16, 16});
  EXPECT_THROW((void)gate.training_step(features, {1.0f}),
               std::invalid_argument);
}

TEST(LearnedGateTest, DeterministicForSameSeed) {
  LearnedGate a(small_gate_config(true)), b(small_gate_config(true));
  util::Rng rng(3);
  tensor::Tensor features({8, 16, 16});
  for (auto& v : features.vec()) v = rng.uniform_f(0.0f, 1.0f);
  EXPECT_TRUE(a.forward(features).allclose(b.forward(features)));
}

}  // namespace
}  // namespace eco::gating
