// Observability-layer tests: the span tracer must be provably off the
// deterministic path (merged reports bitwise identical with tracing on or
// off, across shard × worker counts), histogram metrics must be exact under
// merging and invariant to worker count, ring overflow must degrade to a
// valid truncated trace, and the run-manifest/trace exporters must emit
// strictly valid JSON.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "gating/knowledge_gate.hpp"
#include "gating/learned_gate.hpp"
#include "obs/json.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/shard.hpp"
#include "runtime/stream.hpp"
#include "runtime/thread_pool.hpp"

namespace eco::runtime {
namespace {

ShardGateFactory knowledge_factory() {
  return [](const core::EcoFusionEngine& engine) {
    return std::make_unique<gating::KnowledgeGate>(
        engine.default_knowledge_table(), engine.config_space().size());
  };
}

// Deterministic fixed-seed Deep gate; it pulls the stem features F every
// frame, so stem compute / cache-hit spans are genuinely on the path.
ShardGateFactory deep_factory() {
  return [](const core::EcoFusionEngine& engine) {
    gating::LearnedGateConfig config;
    config.num_configs = engine.config_space().size();
    return std::make_unique<gating::LearnedGate>(config);
  };
}

StreamConfig small_stream() {
  StreamConfig config;
  config.sequence.length = 8;
  config.sequences_per_scene = 1;
  config.seed = 99;
  return config;
}

ShardedReport run_sharded(std::size_t shards, std::size_t workers,
                          bool tracing,
                          const ShardGateFactory& gates = knowledge_factory()) {
  ShardedConfig config;
  config.shards = shards;
  config.pipeline.workers = workers;
  config.pipeline.window = 16;
  config.pipeline.tracing = tracing;
  ShardedPipeline pipeline(config);
  return pipeline.run(small_stream(), gates);
}

/// Bitwise equality of every field the determinism contract covers,
/// including the full per-frame records.
void expect_reports_equal(const PipelineReport& a, const PipelineReport& b) {
  ASSERT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_EQ(a.map, b.map);
  EXPECT_EQ(a.total_detections, b.total_detections);
  EXPECT_EQ(a.exec.branch_runs, b.exec.branch_runs);
  EXPECT_EQ(a.exec.channel_scans_requested, b.exec.channel_scans_requested);
  EXPECT_EQ(a.exec.channel_scans_unique, b.exec.channel_scans_unique);
  EXPECT_EQ(a.exec.stems_skipped, b.exec.stems_skipped);
  EXPECT_EQ(a.exec.stem_cache_hits, b.exec.stem_cache_hits);
  EXPECT_EQ(a.exec.stem_cache_misses, b.exec.stem_cache_misses);
  EXPECT_EQ(a.exec.batches, b.exec.batches);
  EXPECT_EQ(a.exec.mean_batch, b.exec.mean_batch);
  ASSERT_EQ(a.frame_stats.size(), b.frame_stats.size());
  for (std::size_t i = 0; i < a.frame_stats.size(); ++i) {
    const FrameStats& x = a.frame_stats[i];
    const FrameStats& y = b.frame_stats[i];
    EXPECT_EQ(x.stream_index, y.stream_index);
    EXPECT_EQ(x.config_index, y.config_index);
    EXPECT_EQ(x.loss, y.loss);              // bitwise
    EXPECT_EQ(x.energy_j, y.energy_j);      // bitwise
    EXPECT_EQ(x.latency_ms, y.latency_ms);  // bitwise
    EXPECT_EQ(x.detections, y.detections);
    EXPECT_EQ(x.batch_size, y.batch_size);
  }
}

// ---- histograms -----------------------------------------------------------

TEST(Histogram, BucketingIsExactPowerOfTwo) {
  using obs::Histogram;
  // Bucket i covers [2^(i+kMinExp-1), 2^(i+kMinExp)); 1.0 = 2^0 sits in the
  // bucket whose upper bound is 2 (frexp(1.0) -> 0.5 * 2^1).
  const std::size_t one = Histogram::bucket_of(1.0);
  EXPECT_EQ(Histogram::bucket_upper(one), 2.0);
  EXPECT_EQ(Histogram::bucket_of(1.5), one);
  EXPECT_EQ(Histogram::bucket_of(2.0), one + 1);
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0u);
  // Overflow clamps to the top bucket instead of wrapping.
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, RecordAndPercentiles) {
  obs::Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0.0);  // empty
  for (int i = 0; i < 90; ++i) h.record(1.0);   // bucket upper bound 2
  for (int i = 0; i < 10; ++i) h.record(100.0); // bucket upper bound 128
  EXPECT_EQ(h.total(), 100u);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_EQ(h.percentile(0.50), 2.0);
  EXPECT_EQ(h.percentile(0.90), 2.0);
  EXPECT_EQ(h.percentile(0.95), 128.0);
  EXPECT_EQ(h.percentile(0.99), 128.0);
}

TEST(Histogram, NanSamplesAreDroppedEntirely) {
  obs::Histogram h;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  h.record(nan);  // NaN-first must not poison min/max
  EXPECT_EQ(h.total(), 0u);
  h.record(2.0);
  h.record(nan);
  h.record(8.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.min(), 2.0);
  EXPECT_EQ(h.max(), 8.0);
  obs::MetricsRegistry registry;
  registry.histogram("modeled/latency_ms") = h;
  EXPECT_TRUE(obs::json_valid(registry.to_json()));
  EXPECT_EQ(registry.to_json().find("nan"), std::string::npos);
}

TEST(Histogram, MergeEqualsConcatenation) {
  obs::Histogram merged_parts, whole;
  obs::Histogram a, b;
  const double samples[] = {0.25, 1.0, 3.5, 7.0, 64.0, 0.001, 9000.0};
  std::size_t i = 0;
  for (double v : samples) {
    ((i++ % 2 == 0) ? a : b).record(v);
    whole.record(v);
  }
  merged_parts.merge(a);
  merged_parts.merge(b);
  EXPECT_TRUE(merged_parts == whole);
}

TEST(MetricsRegistry, MergeSemanticsAndJson) {
  obs::MetricsRegistry a, b;
  a.add_counter("frames", 10);
  b.add_counter("frames", 32);
  a.set_gauge("obs/high_water", 100.0);
  b.set_gauge("obs/high_water", 250.0);
  a.histogram("modeled/latency_ms").record(4.0);
  b.histogram("modeled/latency_ms").record(16.0);
  a.merge(b);
  EXPECT_EQ(a.counter("frames"), 42u);          // counters sum
  const std::string json = a.to_json();
  EXPECT_TRUE(obs::json_valid(json));
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  ASSERT_NE(a.find_histogram("modeled/latency_ms"), nullptr);
  EXPECT_EQ(a.find_histogram("modeled/latency_ms")->total(), 2u);
}

TEST(MetricsRegistry, LongNamesAndSmallValuesStayValidJson) {
  // A realistic long histogram name plus six sub-millisecond %.6g values
  // (11-13 chars each) used to overflow a fixed formatting buffer and emit
  // truncated — invalid — JSON. Names must never be length-limited.
  obs::MetricsRegistry registry;
  const std::string long_name(120, 'x');
  obs::Histogram& h =
      registry.histogram("modeled/scan_dedup_ratio_" + long_name);
  for (int i = 0; i < 1000000; ++i) h.record(0.000976562);
  registry.add_counter("counter_" + long_name, 123456789012345ull);
  registry.set_gauge("gauge_" + long_name, 0.000976562);
  const std::string json = registry.to_json();
  EXPECT_TRUE(obs::json_valid(json));
  EXPECT_NE(json.find(long_name), std::string::npos);
  EXPECT_NE(json.find("0.000976562"), std::string::npos);
}

// ---- JSON validator -------------------------------------------------------

TEST(JsonValidator, AcceptsAndRejects) {
  using obs::json_valid;
  EXPECT_TRUE(json_valid("{\"a\": [1, 2.5, -3e4], \"b\": {\"c\": null}}"));
  EXPECT_TRUE(json_valid("[true, false, \"\\u00e9\\n\"]"));
  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{\"a\": }"));
  EXPECT_FALSE(json_valid("{\"a\": 1,}"));
  EXPECT_FALSE(json_valid("[1] trailing"));
  EXPECT_FALSE(json_valid("{\"unterminated: 1}"));
  EXPECT_FALSE(json_valid("01"));  // leading zero
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---- tracing vs determinism ----------------------------------------------

TEST(Tracing, MergedReportsBitwiseIdenticalOnOrOff) {
  obs::Tracer tracer;
  tracer.install();
  for (std::size_t shards : {1u, 2u}) {
    for (std::size_t workers : {1u, 4u}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " workers=" + std::to_string(workers));
      const ShardedReport traced = run_sharded(shards, workers, true);
      const ShardedReport untraced = run_sharded(shards, workers, false);
      expect_reports_equal(traced.merged, untraced.merged);
    }
  }
  EXPECT_GT(tracer.stats().total_spans, 0u);
  tracer.uninstall();
}

TEST(Tracing, NoSpansWhenFlagOffDespiteInstalledTracer) {
  obs::Tracer tracer;
  tracer.install();
  (void)run_sharded(2, 4, /*tracing=*/false);
  EXPECT_EQ(tracer.stats().total_spans, 0u);
  tracer.uninstall();
}

TEST(Tracing, CoversStagesAndShardLanes) {
  obs::Tracer tracer;
  tracer.install();
  // The Deep gate pulls stem features every frame, putting stem spans on
  // the path alongside the always-on runtime stages.
  (void)run_sharded(2, 4, /*tracing=*/true, deep_factory());
  const obs::TraceStats stats = tracer.stats();
  auto count = [&stats](obs::Stage stage) {
    return stats.per_stage[static_cast<std::size_t>(stage)];
  };
  EXPECT_GT(count(obs::Stage::kStreamPull), 0u);
  EXPECT_GT(count(obs::Stage::kSelect), 0u);
  EXPECT_GT(count(obs::Stage::kChannelScan), 0u);
  EXPECT_GT(count(obs::Stage::kNmsMerge), 0u);
  EXPECT_GT(count(obs::Stage::kFinishFrame), 0u);
  EXPECT_GT(count(obs::Stage::kWindowUpdate), 0u);
  EXPECT_GT(count(obs::Stage::kShardMerge), 0u);
  EXPECT_GT(count(obs::Stage::kStemCompute) + count(obs::Stage::kStemCacheHit),
            0u);
  // Shards 0 and 1 plus the run-level merge lane.
  EXPECT_GE(stats.shard_lanes, 3u);
  const std::string json = tracer.trace_json();
  EXPECT_TRUE(obs::json_valid(json));
  EXPECT_NE(json.find("\"shard 1\""), std::string::npos);
  EXPECT_NE(json.find("\"shard_merge\""), std::string::npos);
  tracer.uninstall();
}

TEST(Tracing, SequentialTracersNeverAliasThreadRingCaches) {
  // Stack-allocated tracers in a loop reuse the same address. If the
  // per-thread ring cache were keyed on that address, iteration 2's spans
  // would be written into iteration 1's freed ring (use-after-free) and
  // silently vanish from iteration 2's stats. Generation keying makes each
  // tracer's identity unique regardless of address reuse.
  for (int i = 0; i < 3; ++i) {
    obs::Tracer tracer;
    tracer.install();
    {
      obs::ShardScope scope(0, /*active=*/true);
      obs::Span span(obs::Stage::kStreamPull);
    }
    EXPECT_EQ(tracer.stats().total_spans, 1u);
    tracer.uninstall();
  }
}

TEST(Tracing, RingOverflowDropsSpansButTraceStaysValid) {
  obs::TraceConfig config;
  config.ring_capacity = 4;  // far below one run's span volume
  obs::Tracer tracer(config);
  tracer.install();
  (void)run_sharded(1, 2, /*tracing=*/true);
  const obs::TraceStats stats = tracer.stats();
  EXPECT_GT(stats.dropped_spans, 0u);
  EXPECT_GT(stats.total_spans, 0u);
  // Every retained record predates the overflow; the export still parses.
  EXPECT_TRUE(obs::json_valid(tracer.trace_json()));
  tracer.uninstall();
}

// ---- metrics over reports -------------------------------------------------

TEST(RunMetrics, ModeledHistogramInvariantToWorkerCount) {
  const ShardedReport one = run_sharded(1, 1, false);
  const ShardedReport four = run_sharded(1, 4, false);
  const obs::MetricsRegistry m1 = collect_run_metrics(one.merged);
  const obs::MetricsRegistry m4 = collect_run_metrics(four.merged);
  ASSERT_NE(m1.find_histogram("modeled/latency_ms"), nullptr);
  EXPECT_TRUE(*m1.find_histogram("modeled/latency_ms") ==
              *m4.find_histogram("modeled/latency_ms"));
  EXPECT_TRUE(*m1.find_histogram("modeled/batch_size") ==
              *m4.find_histogram("modeled/batch_size"));
  EXPECT_EQ(m1.counter("frames"), m4.counter("frames"));
  EXPECT_EQ(m1.counter("detections"), m4.counter("detections"));
}

TEST(RunMetrics, HistogramMergeMatchesWholeRunCollection) {
  // Split the merged report's frame records in half, collect metrics per
  // half, merge — the histogram must equal the whole-run collection
  // (integer bucket counts, grouping-invariant by construction).
  const ShardedReport run = run_sharded(2, 4, false);
  const PipelineReport& whole = run.merged;
  PipelineReport first, second;
  const std::size_t half = whole.frame_stats.size() / 2;
  first.frame_stats.assign(whole.frame_stats.begin(),
                           whole.frame_stats.begin() + half);
  second.frame_stats.assign(whole.frame_stats.begin() + half,
                            whole.frame_stats.end());
  obs::MetricsRegistry merged = collect_run_metrics(first);
  merged.merge(collect_run_metrics(second));
  const obs::MetricsRegistry direct = collect_run_metrics(whole);
  EXPECT_TRUE(*merged.find_histogram("modeled/latency_ms") ==
              *direct.find_histogram("modeled/latency_ms"));
  EXPECT_TRUE(*merged.find_histogram("obs/wall_ms") ==
              *direct.find_histogram("obs/wall_ms"));
}

// ---- control slices through the merge ------------------------------------

TEST(ControlSlices, CarriedPerShardThroughMerge) {
  const ShardedReport run = run_sharded(2, 4, false);
  ASSERT_EQ(run.merged.control_slices.size(), 2u);
  std::size_t frames = 0;
  for (std::size_t s = 0; s < run.merged.control_slices.size(); ++s) {
    const ControlSlice& slice = run.merged.control_slices[s];
    EXPECT_EQ(slice.shard_index, s);
    frames += slice.frames;
    // The slice mirrors the shard's own trace verbatim.
    ASSERT_LT(s, run.shards.size());
    EXPECT_EQ(slice.lambda_trace, run.shards[s].lambda_trace);
    EXPECT_EQ(slice.deadline_trace, run.shards[s].deadline_trace);
    EXPECT_EQ(slice.final_lambda, run.shards[s].final_lambda);
  }
  EXPECT_EQ(frames, run.merged.frames);

  // An unsharded pipeline reports exactly one slice — its own flat traces.
  // (A sharded merge, even at 1 shard, leaves the flat merged traces empty
  // by design; only the slices carry them.)
  const core::EcoFusionEngine engine;
  PipelineConfig config;
  config.workers = 2;
  config.window = 16;
  StreamingPipeline pipeline(engine, config);
  FrameStream stream(small_stream());
  const PipelineReport single = pipeline.run(stream, [&engine] {
    return std::make_unique<gating::KnowledgeGate>(
        engine.default_knowledge_table(), engine.config_space().size());
  });
  ASSERT_EQ(single.control_slices.size(), 1u);
  EXPECT_EQ(single.control_slices[0].lambda_trace, single.lambda_trace);
  EXPECT_EQ(single.control_slices[0].deadline_trace, single.deadline_trace);
}

// ---- manifest -------------------------------------------------------------

TEST(Manifest, EmitsValidSelfDescribingJson) {
  obs::RunManifest manifest;
  manifest.tool = "obs_test";
  manifest.params = {{"window", "16"}, {"note", "quote\"and\\slash"}};
  manifest.capture_env({"ECO_OBS_TEST_UNSET_VAR"});
  manifest.shard_control.push_back({0, {0.1f, 0.2f}, {0.0f, 0.5f}});
  manifest.report_fields = {{"modeled_map", 0.5}, {"frames", 64.0}};
  const std::string json = manifest.to_json();
  EXPECT_TRUE(obs::json_valid(json));
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\""), std::string::npos);
  EXPECT_NE(json.find("\"lambda_trace\""), std::string::npos);
  EXPECT_NE(json.find("ECO_OBS_TEST_UNSET_VAR"), std::string::npos);

  const std::string path = "obs_test_manifest.json";
  ASSERT_TRUE(manifest.write_json(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back;
  char buf[512];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) read_back.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read_back, json);
}

}  // namespace
}  // namespace eco::runtime
