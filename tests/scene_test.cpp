#include "dataset/scene.hpp"

#include <gtest/gtest.h>

namespace eco::dataset {
namespace {

TEST(SceneTest, AllSceneTypesEnumerated) {
  const auto types = all_scene_types();
  EXPECT_EQ(types.size(), kNumSceneTypes);
  EXPECT_EQ(types.front(), SceneType::kCity);
  EXPECT_EQ(types.back(), SceneType::kSnow);
}

TEST(SceneTest, NamesRoundTripThroughParse) {
  for (SceneType type : all_scene_types()) {
    SceneType parsed;
    ASSERT_TRUE(parse_scene_type(scene_type_name(type), parsed));
    EXPECT_EQ(parsed, type);
  }
}

TEST(SceneTest, ParseRejectsUnknownNames) {
  SceneType out;
  EXPECT_FALSE(parse_scene_type("desert", out));
  EXPECT_FALSE(parse_scene_type("", out));
  EXPECT_FALSE(parse_scene_type("City", out));  // case sensitive
}

TEST(SceneTest, ClassPriorsHavePositiveExtents) {
  for (detect::ObjectClass cls : detect::all_object_classes()) {
    const ClassPriors& p = class_priors(cls);
    EXPECT_GT(p.width, 0.0f);
    EXPECT_GT(p.height, 0.0f);
    EXPECT_GT(p.camera_intensity, 0.0f);
    EXPECT_LE(p.camera_intensity, 1.0f);
    EXPECT_GT(p.lidar_reflectivity, 0.0f);
    EXPECT_GT(p.radar_rcs, 0.0f);
  }
}

TEST(SceneTest, VehicleRcsExceedsPedestrianRcs) {
  // Radar cross-section ordering: metal bulk > soft targets.
  EXPECT_GT(class_priors(detect::ObjectClass::kBus).radar_rcs,
            class_priors(detect::ObjectClass::kPedestrian).radar_rcs);
  EXPECT_GT(class_priors(detect::ObjectClass::kTruck).radar_rcs,
            class_priors(detect::ObjectClass::kBicycle).radar_rcs);
  EXPECT_GT(class_priors(detect::ObjectClass::kCar).radar_rcs,
            class_priors(detect::ObjectClass::kBicycle).radar_rcs);
}

TEST(SceneTest, BusIsLargestClass) {
  const float bus_area = class_priors(detect::ObjectClass::kBus).width *
                         class_priors(detect::ObjectClass::kBus).height;
  for (detect::ObjectClass cls : detect::all_object_classes()) {
    if (cls == detect::ObjectClass::kBus) continue;
    const ClassPriors& p = class_priors(cls);
    EXPECT_LT(p.width * p.height, bus_area)
        << detect::object_class_name(cls);
  }
}

TEST(SceneTest, EnvironmentClassWeightsArePositiveSum) {
  for (SceneType type : all_scene_types()) {
    const SceneEnvironment env = scene_environment(type);
    double sum = 0.0;
    for (double w : env.class_weights) {
      EXPECT_GE(w, 0.0);
      sum += w;
    }
    EXPECT_NEAR(sum, 1.0, 0.05) << scene_type_name(type);
    EXPECT_LE(env.min_objects, env.max_objects);
    EXPECT_GT(env.min_objects, 0);
  }
}

TEST(SceneTest, FogAndSnowAreMostAttenuating) {
  const float fog = scene_environment(SceneType::kFog).attenuation;
  const float snow = scene_environment(SceneType::kSnow).attenuation;
  for (SceneType type : {SceneType::kCity, SceneType::kJunction,
                         SceneType::kMotorway, SceneType::kRural,
                         SceneType::kNight}) {
    EXPECT_LT(scene_environment(type).attenuation, fog);
    EXPECT_LT(scene_environment(type).attenuation, snow);
  }
}

TEST(SceneTest, NightHasLowestIllumination) {
  const float night = scene_environment(SceneType::kNight).illumination;
  for (SceneType type : all_scene_types()) {
    if (type == SceneType::kNight) continue;
    EXPECT_GT(scene_environment(type).illumination, night);
  }
}

TEST(SceneTest, PrecipitationOnlyInWetScenes) {
  EXPECT_GT(scene_environment(SceneType::kRain).precipitation, 0.5f);
  EXPECT_GT(scene_environment(SceneType::kSnow).precipitation, 0.5f);
  EXPECT_EQ(scene_environment(SceneType::kMotorway).precipitation, 0.0f);
  EXPECT_EQ(scene_environment(SceneType::kJunction).precipitation, 0.0f);
}

TEST(SceneTest, ObjectClassNamesMatchRadiateTaxonomy) {
  EXPECT_STREQ(detect::object_class_name(detect::ObjectClass::kCar), "car");
  EXPECT_STREQ(
      detect::object_class_name(detect::ObjectClass::kPedestrianGroup),
      "group_of_pedestrians");
  EXPECT_EQ(detect::all_object_classes().size(), detect::kNumObjectClasses);
}

}  // namespace
}  // namespace eco::dataset
