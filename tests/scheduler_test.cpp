// Scheduler tests: SmallTask storage, the Chase-Lev WorkDeque, the
// CompletionLatch window events, the work-stealing ThreadPool, and the
// bitwise determinism of the pipeline across every scheduling toggle
// ({steal on/off} x {window pipelining on/off} x worker counts x shard
// counts). The scheduler may change WHERE and WHEN work runs — never what
// the merged reports contain.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "gating/learned_gate.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/shard.hpp"
#include "runtime/stream.hpp"
#include "runtime/thread_pool.hpp"

namespace eco::runtime {
namespace {

const core::EcoFusionEngine& engine() {
  static core::EcoFusionEngine instance;
  return instance;
}

// A Deep gate pulls the stem features F, so these runs exercise the
// temporal stem cache — the part of phase A most sensitive to scheduling
// order (per-sequence refreshes must stay sequential in stream order).
GateFactory deep_factory() {
  return [] {
    gating::LearnedGateConfig config;
    config.num_configs = engine().config_space().size();
    return std::make_unique<gating::LearnedGate>(config);
  };
}

ShardGateFactory sharded_deep_factory() {
  return [](const core::EcoFusionEngine& shard_engine) {
    gating::LearnedGateConfig config;
    config.num_configs = shard_engine.config_space().size();
    return std::make_unique<gating::LearnedGate>(config);
  };
}

StreamConfig small_stream() {
  StreamConfig config;
  config.sequence.length = 8;
  config.sequences_per_scene = 1;
  config.seed = 99;
  return config;
}

PipelineReport run_pipeline(std::size_t workers, bool steal,
                            bool pipelined) {
  PipelineConfig config;
  config.workers = workers;
  config.window = 16;
  config.steal = steal;
  config.pipeline_windows = pipelined;
  const StreamingPipeline pipeline(engine(), config);
  FrameStream stream(small_stream());
  return pipeline.run(stream, deep_factory());
}

ShardedReport run_sharded(std::size_t shards, std::size_t workers,
                          bool steal, bool pipelined) {
  ShardedConfig config;
  config.shards = shards;
  config.pipeline.workers = workers;
  config.pipeline.window = 16;
  config.pipeline.steal = steal;
  config.pipeline.pipeline_windows = pipelined;
  const ShardedPipeline pipeline(config);
  return pipeline.run(small_stream(), sharded_deep_factory());
}

/// Bitwise equality of everything the determinism contract covers. Alloc
/// ATTRIBUTION (per-frame tensor_allocs, zero_alloc_frames) is deliberately
/// not pinned here: a Deep gate lazily allocates its buffers on first use,
/// and lanes bind to per-WORKER gate instances, so which frame absorbs a
/// gate's warm-up depends on scheduling. arena_test pins alloc invariance
/// with a non-allocating gate, where the 2x ping-ponged slot topology makes
/// the counters a pure function of stream order.
void expect_reports_identical(const PipelineReport& a,
                              const PipelineReport& b) {
  ASSERT_EQ(a.frames, b.frames);
  EXPECT_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.mean_energy_j, b.mean_energy_j);
  EXPECT_EQ(a.mean_latency_ms, b.mean_latency_ms);
  EXPECT_EQ(a.mean_loss, b.mean_loss);
  EXPECT_EQ(a.map, b.map);
  EXPECT_EQ(a.total_detections, b.total_detections);
  EXPECT_EQ(a.final_lambda, b.final_lambda);
  EXPECT_EQ(a.final_lambda_latency, b.final_lambda_latency);
  ASSERT_EQ(a.frame_stats.size(), b.frame_stats.size());
  for (std::size_t i = 0; i < a.frame_stats.size(); ++i) {
    const FrameStats& x = a.frame_stats[i];
    const FrameStats& y = b.frame_stats[i];
    EXPECT_EQ(x.stream_index, y.stream_index);
    EXPECT_EQ(x.scene, y.scene);
    EXPECT_EQ(x.config_index, y.config_index);
    EXPECT_EQ(x.loss, y.loss);              // bitwise
    EXPECT_EQ(x.energy_j, y.energy_j);      // bitwise
    EXPECT_EQ(x.latency_ms, y.latency_ms);  // bitwise
    EXPECT_EQ(x.lambda_energy, y.lambda_energy);
    EXPECT_EQ(x.lambda_latency, y.lambda_latency);
    EXPECT_EQ(x.detections, y.detections);
    EXPECT_EQ(x.stem_source, y.stem_source);
    EXPECT_EQ(x.batch_size, y.batch_size);
    EXPECT_EQ(x.branch_runs, y.branch_runs);
    EXPECT_EQ(x.channel_scans_requested, y.channel_scans_requested);
    EXPECT_EQ(x.channel_scans_unique, y.channel_scans_unique);
    EXPECT_EQ(x.arena_bytes_high_water, y.arena_bytes_high_water);
  }
  EXPECT_EQ(a.exec.batches, b.exec.batches);
  EXPECT_EQ(a.exec.max_batch, b.exec.max_batch);
  EXPECT_EQ(a.exec.batched_frames, b.exec.batched_frames);
  EXPECT_EQ(a.exec.branch_runs, b.exec.branch_runs);
  EXPECT_EQ(a.exec.channel_scans_requested, b.exec.channel_scans_requested);
  EXPECT_EQ(a.exec.channel_scans_unique, b.exec.channel_scans_unique);
  EXPECT_EQ(a.exec.stems_skipped, b.exec.stems_skipped);
  EXPECT_EQ(a.exec.stems_computed, b.exec.stems_computed);
  EXPECT_EQ(a.exec.stem_cache_hits, b.exec.stem_cache_hits);
  EXPECT_EQ(a.exec.stem_cache_misses, b.exec.stem_cache_misses);
  EXPECT_EQ(a.exec.arena_bytes_high_water, b.exec.arena_bytes_high_water);
}

// ---------------------------------------------------------------------------
// SmallTask
// ---------------------------------------------------------------------------

TEST(SmallTaskTest, SmallCapturesStayInline) {
  int value = 0;
  int* target = &value;
  SmallTask task([target](std::size_t worker) {
    *target = static_cast<int>(worker) + 1;
  });
  EXPECT_TRUE(static_cast<bool>(task));
  EXPECT_FALSE(task.heap_allocated());
  task(4);
  EXPECT_EQ(value, 5);
}

TEST(SmallTaskTest, FatCapturesFallBackToHeap) {
  std::array<char, SmallTask::kInlineBytes + 32> fat{};
  fat[0] = 7;
  int result = 0;
  int* out = &result;
  SmallTask task([fat, out](std::size_t) { *out = fat[0]; });
  EXPECT_TRUE(task.heap_allocated());
  task(0);
  EXPECT_EQ(result, 7);
}

TEST(SmallTaskTest, MoveTransfersTheCallable) {
  int calls = 0;
  int* counter = &calls;
  SmallTask a([counter](std::size_t) { ++*counter; });
  SmallTask b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b(0);
  SmallTask c;
  c = std::move(b);
  c(0);
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------------
// WorkDeque
// ---------------------------------------------------------------------------

WorkDeque::Item make_item(std::vector<int>& order, int tag) {
  std::vector<int>* sink = &order;
  return WorkDeque::Item{
      SmallTask([sink, tag](std::size_t) { sink->push_back(tag); }), nullptr};
}

TEST(WorkDequeTest, OwnerPopsLifoThievesStealFifo) {
  WorkDeque deque(8);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(deque.push(make_item(order, i)));
  }
  WorkDeque::Item item;
  ASSERT_TRUE(deque.pop(item));  // LIFO: most recent first
  item.task(0);
  ASSERT_TRUE(deque.steal(item));  // FIFO: oldest first
  item.task(0);
  ASSERT_TRUE(deque.steal(item));
  item.task(0);
  ASSERT_TRUE(deque.pop(item));
  item.task(0);
  EXPECT_FALSE(deque.pop(item));
  EXPECT_FALSE(deque.steal(item));
  EXPECT_EQ(order, (std::vector<int>{3, 0, 1, 2}));
}

TEST(WorkDequeTest, PushReportsFullAtCapacity) {
  WorkDeque deque(4);
  EXPECT_EQ(deque.capacity(), 4u);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(deque.push(make_item(order, i)));
  }
  EXPECT_FALSE(deque.push(make_item(order, 99)));
  WorkDeque::Item item;
  ASSERT_TRUE(deque.pop(item));
  EXPECT_TRUE(deque.push(make_item(order, 4)));  // slot freed, reusable
}

TEST(WorkDequeTest, ConcurrentOwnerAndThievesConserveEveryTask) {
  constexpr std::size_t kTasks = 4096;
  constexpr std::size_t kThieves = 3;
  WorkDeque deque(256);
  std::unique_ptr<std::atomic<int>[]> seen(new std::atomic<int>[kTasks]());
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      WorkDeque::Item item;
      while (!done.load(std::memory_order_acquire) || !deque.empty()) {
        if (deque.steal(item)) item.task(1);
      }
    });
  }

  // Owner: push everything, popping (and running) locally whenever the ring
  // is full, then drain the leftovers — exactly the worker fast path.
  std::atomic<int>* slots = seen.get();
  std::size_t next = 0;
  WorkDeque::Item item;
  while (next < kTasks) {
    const std::size_t i = next;
    WorkDeque::Item candidate{SmallTask([slots, i](std::size_t) {
                                slots[i].fetch_add(
                                    1, std::memory_order_relaxed);
                              }),
                              nullptr};
    if (deque.push(std::move(candidate))) {
      ++next;
    } else if (deque.pop(item)) {
      item.task(0);
    }
  }
  while (deque.pop(item)) item.task(0);
  done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  for (std::size_t i = 0; i < kTasks; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "task " << i;
  }
}

// ---------------------------------------------------------------------------
// CompletionLatch
// ---------------------------------------------------------------------------

TEST(CompletionLatchTest, WaitsForEveryCountdownAndIsReusable) {
  CompletionLatch latch;
  latch.wait();  // default-constructed latch is released
  latch.reset(3);
  EXPECT_FALSE(latch.ready());
  std::thread releaser([&latch] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      latch.count_down();
    }
  });
  latch.wait();
  EXPECT_TRUE(latch.ready());
  releaser.join();
  latch.reset(1);
  EXPECT_FALSE(latch.ready());
  latch.count_down();
  latch.wait();
}

// ---------------------------------------------------------------------------
// ThreadPool scheduling
// ---------------------------------------------------------------------------

TEST(ThreadPoolSchedulerTest, SteadyStateSubmissionNeverTouchesTheHeap) {
  ThreadPoolConfig config;
  config.workers = 2;
  ThreadPool pool(config);
  std::atomic<int> count{0};
  for (int i = 0; i < 256; ++i) {
    pool.submit([&count](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 256);
  SchedulerStats stats = pool.stats();
  EXPECT_EQ(stats.tasks_executed, 256u);
  EXPECT_EQ(stats.tasks_inlined, 256u);
  EXPECT_EQ(stats.tasks_heap, 0u);

  // A deliberately fat capture is the one way to reach the heap path.
  std::array<char, SmallTask::kInlineBytes + 64> fat{};
  pool.submit([fat, &count](std::size_t) {
    count.fetch_add(static_cast<int>(fat.size()) != 0 ? 1 : 0,
                    std::memory_order_relaxed);
  });
  pool.wait_idle();
  EXPECT_EQ(pool.stats().tasks_heap, 1u);
}

TEST(ThreadPoolSchedulerTest, StealsRebalanceWorkOffABusyWorker) {
  ThreadPoolConfig config;
  config.workers = 2;
  config.steal = true;
  ThreadPool pool(config);
  constexpr int kChildren = 64;
  std::atomic<int> finished{0};
  pool.submit([&pool, &finished](std::size_t) {
    // The children land in THIS worker's deque, and this task then blocks
    // until they are all done — only the other worker's steals can make
    // progress, so steals are not just possible but required.
    for (int i = 0; i < kChildren; ++i) {
      pool.submit([&finished](std::size_t) {
        finished.fetch_add(1, std::memory_order_relaxed);
      });
    }
    while (finished.load(std::memory_order_relaxed) < kChildren) {
      std::this_thread::yield();
    }
  });
  pool.wait_idle();
  EXPECT_EQ(finished.load(), kChildren);
  EXPECT_GE(pool.stats().steals, static_cast<std::uint64_t>(kChildren));
}

TEST(ThreadPoolSchedulerTest, StealOffExecutesEverythingWithoutSteals) {
  ThreadPoolConfig config;
  config.workers = 4;
  config.steal = false;
  ThreadPool pool(config);
  std::atomic<int> count{0};
  for (int i = 0; i < 64; ++i) {
    pool.submit([&count](std::size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 64);
  EXPECT_FALSE(pool.stealing());
  EXPECT_EQ(pool.stats().steals, 0u);
}

// ---------------------------------------------------------------------------
// Pipeline determinism across every scheduling toggle
// ---------------------------------------------------------------------------

TEST(SchedulerDeterminismTest, TogglesAndWorkerCountsAreBitwiseInvariant) {
  const PipelineReport reference =
      run_pipeline(/*workers=*/1, /*steal=*/false, /*pipelined=*/false);
  ASSERT_GT(reference.frames, 0u);
  for (const bool steal : {false, true}) {
    for (const bool pipelined : {false, true}) {
      for (const std::size_t workers : {1u, 2u, 4u}) {
        SCOPED_TRACE(::testing::Message()
                     << "steal=" << steal << " pipelined=" << pipelined
                     << " workers=" << workers);
        const PipelineReport report = run_pipeline(workers, steal, pipelined);
        expect_reports_identical(reference, report);
        // Pipelining is observable ONLY in the scheduler counters.
        if (pipelined) {
          EXPECT_GT(report.scheduler.windows_pipelined, 0u);
        } else {
          EXPECT_EQ(report.scheduler.windows_pipelined, 0u);
        }
      }
    }
  }
}

TEST(SchedulerDeterminismTest, ShardedMergesAreToggleInvariant) {
  for (const std::size_t shards : {1u, 2u}) {
    const ShardedReport reference =
        run_sharded(shards, /*workers=*/2, /*steal=*/false,
                    /*pipelined=*/false);
    for (const bool steal : {false, true}) {
      for (const bool pipelined : {false, true}) {
        SCOPED_TRACE(::testing::Message() << "shards=" << shards
                                          << " steal=" << steal
                                          << " pipelined=" << pipelined);
        const ShardedReport report =
            run_sharded(shards, /*workers=*/2, steal, pipelined);
        expect_reports_identical(reference.merged, report.merged);
      }
    }
  }
}

TEST(SchedulerDeterminismTest, PipelineSubmissionsAreAllInline) {
  const PipelineReport report =
      run_pipeline(/*workers=*/4, /*steal=*/true, /*pipelined=*/true);
  EXPECT_GT(report.scheduler.tasks_executed, 0u);
  EXPECT_EQ(report.scheduler.tasks_heap, 0u);
  EXPECT_EQ(report.scheduler.tasks_inlined, report.scheduler.tasks_executed);
}

TEST(SchedulerDeterminismTest, ControllersForceSequentialWindows) {
  PipelineConfig config;
  config.workers = 2;
  config.window = 16;
  config.budget = BudgetConfig{};
  const StreamingPipeline pipeline(engine(), config);
  FrameStream stream(small_stream());
  const PipelineReport report = pipeline.run(stream, deep_factory());
  // lambda(W+1) depends on window W's fold: a true serialisation, so the
  // pipeline must not overlap windows no matter the config default.
  EXPECT_EQ(report.scheduler.windows_pipelined, 0u);
}

// A worker stolen by the OS (or hogged by a rogue task) must slow the run
// down, never change it: steals drain the hogged worker's queue and the
// stream-order fold erases the rebalancing from the results.
TEST(SchedulerStressTest, HoggedWorkerDoesNotPerturbResults) {
  const PipelineReport baseline =
      run_pipeline(/*workers=*/4, /*steal=*/true, /*pipelined=*/true);

  ThreadPoolConfig pool_config;
  pool_config.workers = 4;
  ThreadPool pool(pool_config);
  std::atomic<bool> hold{true};
  pool.submit([&hold](std::size_t) {
    // Hog one worker for the whole pipeline run (released below).
    while (hold.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  pool.submit([](std::size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  });

  PipelineConfig config;
  config.workers = 4;
  config.window = 16;
  const StreamingPipeline pipeline(engine(), config);
  FrameStream stream(small_stream());
  const PipelineReport report = pipeline.run(stream, deep_factory(), pool);
  hold.store(false, std::memory_order_release);
  pool.wait_idle();

  expect_reports_identical(baseline, report);
}

}  // namespace
}  // namespace eco::runtime
