// Pins the raw-pointer fast kernels bitwise against their reference
// implementations across the awkward geometries: odd extents, stride > 1,
// padding >= kernel/2 (and beyond the kernel), 1x1 kernels, row-restricted
// and empty row ranges. The fast kernels' interior/border split must be
// invisible — Tensor::equals (exact float compare) throughout.
#include <gtest/gtest.h>

#include "detect/rpn.hpp"
#include "detect/scan_scratch.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace eco::tensor {
namespace {

Tensor random_tensor(Shape shape, util::Rng& rng, float lo = -1.0f,
                     float hi = 1.0f) {
  Tensor t(std::move(shape));
  for (float& v : t.vec()) v = rng.uniform_f(lo, hi);
  return t;
}

struct KernelCase {
  std::size_t in_channels, out_channels, kernel, stride, padding, h, w;
};

class ConvKernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(ConvKernelEquivalence, FastMatchesReferenceBitwise) {
  const KernelCase c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  util::Rng rng(c.kernel * 1000 + c.h * 10 + c.stride);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);
  ASSERT_GT(oh, 0u);
  ASSERT_GT(ow, 0u);

  Tensor fast({spec.out_channels, oh, ow});
  Tensor reference({spec.out_channels, oh, ow});
  conv2d_rows_fast(input, weight, bias, spec, 0, oh, fast);
  conv2d_rows_reference(input, weight, bias, spec, 0, oh, reference);
  EXPECT_TRUE(fast.equals(reference))
      << "k=" << c.kernel << " s=" << c.stride << " p=" << c.padding
      << " h=" << c.h << " w=" << c.w;

  // The simd backend too — the vector interior plus its scalar tail (and
  // the delegation to fast for stride > 1) must be invisible.
  Tensor simd({spec.out_channels, oh, ow});
  conv2d_rows_simd(input, weight, bias, spec, 0, oh, simd);
  EXPECT_TRUE(simd.equals(reference))
      << "simd k=" << c.kernel << " s=" << c.stride << " p=" << c.padding
      << " h=" << c.h << " w=" << c.w;

  // The dispatching entry point agrees too (fast path unless the
  // ECO_REFERENCE_KERNELS env pins the reference, which is also exact).
  Tensor dispatched({spec.out_channels, oh, ow});
  conv2d_rows(input, weight, bias, spec, 0, oh, dispatched);
  EXPECT_TRUE(dispatched.equals(reference));
}

TEST_P(ConvKernelEquivalence, SimdSingleRowRangesMatchReference) {
  const KernelCase c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  util::Rng rng(c.kernel * 31 + c.w);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);
  // One row at a time — first, middle, last — so row-granular sharding
  // over the simd kernel composes to the whole-range result.
  for (const std::size_t row : {std::size_t{0}, oh / 2, oh - 1}) {
    const float sentinel = 55.25f;
    Tensor simd = Tensor::full({spec.out_channels, oh, ow}, sentinel);
    Tensor reference = Tensor::full({spec.out_channels, oh, ow}, sentinel);
    conv2d_rows_simd(input, weight, bias, spec, row, row + 1, simd);
    conv2d_rows_reference(input, weight, bias, spec, row, row + 1, reference);
    EXPECT_TRUE(simd.equals(reference)) << "row=" << row;
  }
}

TEST_P(ConvKernelEquivalence, RowRestrictedRangesMatchAndStayInRange) {
  const KernelCase c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  util::Rng rng(c.kernel + c.h + 77);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);

  const float sentinel = -123.5f;
  const std::size_t row_begin = oh / 3;
  const std::size_t row_end = oh - oh / 4;
  Tensor fast = Tensor::full({spec.out_channels, oh, ow}, sentinel);
  Tensor reference = Tensor::full({spec.out_channels, oh, ow}, sentinel);
  conv2d_rows_fast(input, weight, bias, spec, row_begin, row_end, fast);
  conv2d_rows_reference(input, weight, bias, spec, row_begin, row_end,
                        reference);
  EXPECT_TRUE(fast.equals(reference));
  // Rows outside the range are untouched in both.
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      if (oy >= row_begin && oy < row_end) continue;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        ASSERT_EQ(fast.at(oc, oy, ox), sentinel);
      }
    }
  }

  // An empty row range touches nothing at all.
  Tensor untouched = Tensor::full({spec.out_channels, oh, ow}, sentinel);
  conv2d_rows_fast(input, weight, bias, spec, row_begin, row_begin, untouched);
  EXPECT_TRUE(untouched.equals(
      Tensor::full({spec.out_channels, oh, ow}, sentinel)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvKernelEquivalence,
    ::testing::Values(
        // The stem shape (3x3, pad 1) and its batch form.
        KernelCase{1, 8, 3, 1, 1, 48, 48},
        KernelCase{8, 16, 3, 2, 1, 24, 24},
        // Odd extents, non-square.
        KernelCase{2, 3, 3, 1, 1, 5, 7},
        KernelCase{3, 2, 5, 1, 2, 9, 13},
        // stride > 1 with odd extents.
        KernelCase{1, 2, 3, 3, 1, 11, 17},
        KernelCase{2, 2, 5, 2, 2, 15, 9},
        // padding >= kernel/2 and beyond the kernel (fully guarded rows).
        KernelCase{1, 1, 3, 1, 3, 6, 6},
        KernelCase{1, 2, 5, 1, 5, 7, 7},
        // 1x1 kernels (no border at p=0; all border at p=1).
        KernelCase{4, 4, 1, 1, 0, 10, 12},
        KernelCase{2, 2, 1, 2, 1, 8, 8},
        // Kernel equal to the whole input.
        KernelCase{1, 1, 7, 1, 3, 7, 7},
        // SIMD tails: output widths below one SSE vector (4 lanes), then
        // each residue class just above it, then a single-row image.
        KernelCase{1, 1, 3, 1, 1, 3, 1},
        KernelCase{2, 2, 3, 1, 1, 4, 2},
        KernelCase{2, 2, 3, 1, 1, 5, 3},
        KernelCase{1, 2, 3, 1, 1, 6, 4},
        KernelCase{2, 1, 3, 1, 1, 6, 5},
        KernelCase{1, 1, 3, 1, 1, 7, 6},
        KernelCase{2, 3, 3, 1, 1, 8, 7},
        KernelCase{1, 1, 3, 1, 1, 1, 48}));

TEST(BoxBlurKernelTest, FastMatchesReferenceBitwise) {
  util::Rng rng(4242);
  // Widths straddle the 4-lane interior sweep: below one vector, exact
  // multiples, and every tail residue.
  for (const auto& [h, w] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 8}, {8, 1}, {2, 2}, {3, 3}, {3, 4}, {3, 5}, {4, 6},
           {4, 7}, {5, 9}, {48, 48}}) {
    const Tensor grid = random_tensor({1, h, w}, rng, 0.0f, 1.0f);
    Tensor fast, reference, simd, dispatched;
    detect::box_blur3_into_fast(grid, fast);
    detect::box_blur3_into_reference(grid, reference);
    detect::box_blur3_into_simd(grid, simd);
    detect::box_blur3_into(grid, dispatched);
    EXPECT_TRUE(fast.equals(reference)) << h << "x" << w;
    EXPECT_TRUE(simd.equals(reference)) << h << "x" << w;
    EXPECT_TRUE(dispatched.equals(reference)) << h << "x" << w;
  }
}

TEST(IntegralImageKernelTest, SimdResetMatchesReferenceBitwise) {
  util::Rng rng(9911);
  // The simd reset's serial-prefix + vectorized-row-add split must land on
  // the identical table for every extent, including widths below the
  // 2-double SSE vector and single-row/single-column grids.
  for (const auto& [h, w] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 7}, {7, 1}, {2, 2}, {3, 5}, {5, 4}, {13, 29},
           {48, 48}}) {
    const Tensor grid = random_tensor({1, h, w}, rng, 0.0f, 2.0f);
    detect::IntegralImage reference, fast, simd;
    reference.reset(grid, Backend::kReference);
    fast.reset(grid, Backend::kFast);
    simd.reset(grid, Backend::kSimd);
    const std::size_t cells = (h + 1) * (w + 1);
    for (std::size_t i = 0; i < cells; ++i) {
      ASSERT_EQ(fast.table()[i], reference.table()[i])
          << h << "x" << w << " cell " << i;
      ASSERT_EQ(simd.table()[i], reference.table()[i])
          << h << "x" << w << " cell " << i;
    }
  }
}

TEST(AnchorContrastPassTest, SimdSweepMatchesScalarChain) {
  util::Rng rng(77321);
  // Odd extents so the anchor count is not a multiple of the vector width
  // and plenty of anchors clip at the border (invalid geometry lanes take
  // the scalar fallback).
  for (const auto& [h, w] : std::vector<std::pair<std::size_t, std::size_t>>{
           {9, 11}, {48, 48}}) {
    const Tensor grid = random_tensor({1, h, w}, rng, 0.0f, 1.0f);
    detect::ScanPlanKey key;
    key.height = h;
    key.width = w;
    const detect::ScanPlan plan = detect::build_scan_plan(key);
    ASSERT_FALSE(plan.anchors.empty());
    detect::IntegralImage integral(grid);
    std::vector<double> simd(plan.anchors.size());
    detect::detail::anchor_contrast_pass_simd(
        integral.table(), plan.geometry.data(), plan.anchors.size(),
        simd.data());
    for (std::size_t i = 0; i < plan.anchors.size(); ++i) {
      // The exact scalar chain propose_with_plan runs on non-simd backends.
      const detect::AnchorGeometry& g = plan.geometry[i];
      const double inner_sum =
          g.inner_valid
              ? integral.flat_sum(g.inner00, g.inner01, g.inner10, g.inner11)
              : 0.0;
      const double ring_sum =
          g.ring_valid
              ? integral.flat_sum(g.ring00, g.ring01, g.ring10, g.ring11)
              : 0.0;
      const double inside =
          g.inner_area > 0.0f ? inner_sum / g.inner_area : 0.0;
      const double ring_area = g.ring_area;
      const double background =
          ring_area > 0.0 ? (ring_sum - inner_sum) / ring_area : 0.0;
      ASSERT_EQ(simd[i], inside - background)
          << h << "x" << w << " anchor " << i;
    }
  }
}

// Full proposal pass per backend: pinning the whole plumbed path (blur,
// integral, contrast sweep, NMS, top-k) bitwise across backends.
TEST(RpnBackendTest, ProposalsBitwiseInvariantAcrossBackends) {
  util::Rng rng(6001);
  const Tensor grid = random_tensor({1, 48, 48}, rng, 0.0f, 1.0f);
  detect::RpnConfig reference_config;
  reference_config.backend = Backend::kReference;
  const auto reference =
      detect::Rpn(reference_config).propose(grid);
  for (const Backend backend : {Backend::kFast, Backend::kSimd}) {
    detect::RpnConfig config;
    config.backend = backend;
    detect::ScanScratch scratch;
    const auto proposals = detect::Rpn(config).propose(grid, &scratch);
    ASSERT_EQ(proposals.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(proposals[i].box.x1, reference[i].box.x1);
      EXPECT_EQ(proposals[i].box.y1, reference[i].box.y1);
      EXPECT_EQ(proposals[i].box.x2, reference[i].box.x2);
      EXPECT_EQ(proposals[i].box.y2, reference[i].box.y2);
      EXPECT_EQ(proposals[i].objectness, reference[i].objectness);
    }
  }
}

TEST(IntegralImageKernelTest, PointerWalkMatchesDirectPrefixSums) {
  util::Rng rng(515);
  const std::size_t h = 13, w = 29;
  const Tensor grid = random_tensor({1, h, w}, rng, 0.0f, 2.0f);
  detect::IntegralImage integral(grid);
  // Recompute the cumulative table exactly as the original scalar loop did
  // and compare through box_sum lookups over every prefix rectangle.
  std::vector<double> table((h + 1) * (w + 1), 0.0);
  for (std::size_t y = 0; y < h; ++y) {
    double row = 0.0;
    for (std::size_t x = 0; x < w; ++x) {
      row += grid.data()[y * w + x];
      table[(y + 1) * (w + 1) + (x + 1)] = table[y * (w + 1) + (x + 1)] + row;
    }
  }
  for (std::size_t y = 1; y <= h; ++y) {
    for (std::size_t x = 1; x <= w; ++x) {
      detect::Box box;
      box.x1 = 0.0f;
      box.y1 = 0.0f;
      box.x2 = static_cast<float>(x);
      box.y2 = static_cast<float>(y);
      ASSERT_EQ(integral.box_sum(box), table[y * (w + 1) + x]);
    }
  }
}

// The RPN's precomputed anchor geometry (clipped boxes, areas, clamped
// table offsets) must be scoring-equivalent to the per-scan clip/clamp
// path: proposals with and without scratch are bitwise identical.
TEST(AnchorGeometryTest, ScratchProposalsMatchScratchless) {
  util::Rng rng(8080);
  const Tensor grid = random_tensor({1, 48, 48}, rng, 0.0f, 1.0f);
  const detect::Rpn rpn;
  detect::ScanScratch scratch;
  const auto with_scratch = rpn.propose(grid, &scratch);
  const auto without = rpn.propose(grid);
  ASSERT_EQ(with_scratch.size(), without.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_scratch[i].box.x1, without[i].box.x1);
    EXPECT_EQ(with_scratch[i].box.y1, without[i].box.y1);
    EXPECT_EQ(with_scratch[i].box.x2, without[i].box.x2);
    EXPECT_EQ(with_scratch[i].box.y2, without[i].box.y2);
    EXPECT_EQ(with_scratch[i].objectness, without[i].objectness);
  }
}

}  // namespace
}  // namespace eco::tensor
