// Pins the raw-pointer fast kernels bitwise against their reference
// implementations across the awkward geometries: odd extents, stride > 1,
// padding >= kernel/2 (and beyond the kernel), 1x1 kernels, row-restricted
// and empty row ranges. The fast kernels' interior/border split must be
// invisible — Tensor::equals (exact float compare) throughout.
#include <gtest/gtest.h>

#include "detect/rpn.hpp"
#include "detect/scan_scratch.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace eco::tensor {
namespace {

Tensor random_tensor(Shape shape, util::Rng& rng, float lo = -1.0f,
                     float hi = 1.0f) {
  Tensor t(std::move(shape));
  for (float& v : t.vec()) v = rng.uniform_f(lo, hi);
  return t;
}

struct KernelCase {
  std::size_t in_channels, out_channels, kernel, stride, padding, h, w;
};

class ConvKernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(ConvKernelEquivalence, FastMatchesReferenceBitwise) {
  const KernelCase c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  util::Rng rng(c.kernel * 1000 + c.h * 10 + c.stride);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);
  ASSERT_GT(oh, 0u);
  ASSERT_GT(ow, 0u);

  Tensor fast({spec.out_channels, oh, ow});
  Tensor reference({spec.out_channels, oh, ow});
  conv2d_rows_fast(input, weight, bias, spec, 0, oh, fast);
  conv2d_rows_reference(input, weight, bias, spec, 0, oh, reference);
  EXPECT_TRUE(fast.equals(reference))
      << "k=" << c.kernel << " s=" << c.stride << " p=" << c.padding
      << " h=" << c.h << " w=" << c.w;

  // The dispatching entry point agrees too (fast path unless the
  // ECO_REFERENCE_KERNELS env pins the reference, which is also exact).
  Tensor dispatched({spec.out_channels, oh, ow});
  conv2d_rows(input, weight, bias, spec, 0, oh, dispatched);
  EXPECT_TRUE(dispatched.equals(reference));
}

TEST_P(ConvKernelEquivalence, RowRestrictedRangesMatchAndStayInRange) {
  const KernelCase c = GetParam();
  Conv2dSpec spec;
  spec.in_channels = c.in_channels;
  spec.out_channels = c.out_channels;
  spec.kernel = c.kernel;
  spec.stride = c.stride;
  spec.padding = c.padding;
  util::Rng rng(c.kernel + c.h + 77);
  const Tensor input = random_tensor({c.in_channels, c.h, c.w}, rng);
  const Tensor weight = random_tensor(
      {c.out_channels, c.in_channels, c.kernel, c.kernel}, rng);
  const Tensor bias = random_tensor({c.out_channels}, rng);
  const std::size_t oh = spec.out_extent(c.h), ow = spec.out_extent(c.w);

  const float sentinel = -123.5f;
  const std::size_t row_begin = oh / 3;
  const std::size_t row_end = oh - oh / 4;
  Tensor fast = Tensor::full({spec.out_channels, oh, ow}, sentinel);
  Tensor reference = Tensor::full({spec.out_channels, oh, ow}, sentinel);
  conv2d_rows_fast(input, weight, bias, spec, row_begin, row_end, fast);
  conv2d_rows_reference(input, weight, bias, spec, row_begin, row_end,
                        reference);
  EXPECT_TRUE(fast.equals(reference));
  // Rows outside the range are untouched in both.
  for (std::size_t oc = 0; oc < spec.out_channels; ++oc) {
    for (std::size_t oy = 0; oy < oh; ++oy) {
      if (oy >= row_begin && oy < row_end) continue;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        ASSERT_EQ(fast.at(oc, oy, ox), sentinel);
      }
    }
  }

  // An empty row range touches nothing at all.
  Tensor untouched = Tensor::full({spec.out_channels, oh, ow}, sentinel);
  conv2d_rows_fast(input, weight, bias, spec, row_begin, row_begin, untouched);
  EXPECT_TRUE(untouched.equals(
      Tensor::full({spec.out_channels, oh, ow}, sentinel)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvKernelEquivalence,
    ::testing::Values(
        // The stem shape (3x3, pad 1) and its batch form.
        KernelCase{1, 8, 3, 1, 1, 48, 48},
        KernelCase{8, 16, 3, 2, 1, 24, 24},
        // Odd extents, non-square.
        KernelCase{2, 3, 3, 1, 1, 5, 7},
        KernelCase{3, 2, 5, 1, 2, 9, 13},
        // stride > 1 with odd extents.
        KernelCase{1, 2, 3, 3, 1, 11, 17},
        KernelCase{2, 2, 5, 2, 2, 15, 9},
        // padding >= kernel/2 and beyond the kernel (fully guarded rows).
        KernelCase{1, 1, 3, 1, 3, 6, 6},
        KernelCase{1, 2, 5, 1, 5, 7, 7},
        // 1x1 kernels (no border at p=0; all border at p=1).
        KernelCase{4, 4, 1, 1, 0, 10, 12},
        KernelCase{2, 2, 1, 2, 1, 8, 8},
        // Kernel equal to the whole input.
        KernelCase{1, 1, 7, 1, 3, 7, 7}));

TEST(BoxBlurKernelTest, FastMatchesReferenceBitwise) {
  util::Rng rng(4242);
  for (const auto& [h, w] : std::vector<std::pair<std::size_t, std::size_t>>{
           {1, 1}, {1, 8}, {8, 1}, {2, 2}, {3, 3}, {5, 9}, {48, 48}}) {
    const Tensor grid = random_tensor({1, h, w}, rng, 0.0f, 1.0f);
    Tensor fast, reference, dispatched;
    detect::box_blur3_into_fast(grid, fast);
    detect::box_blur3_into_reference(grid, reference);
    detect::box_blur3_into(grid, dispatched);
    EXPECT_TRUE(fast.equals(reference)) << h << "x" << w;
    EXPECT_TRUE(dispatched.equals(reference)) << h << "x" << w;
  }
}

TEST(IntegralImageKernelTest, PointerWalkMatchesDirectPrefixSums) {
  util::Rng rng(515);
  const std::size_t h = 13, w = 29;
  const Tensor grid = random_tensor({1, h, w}, rng, 0.0f, 2.0f);
  detect::IntegralImage integral(grid);
  // Recompute the cumulative table exactly as the original scalar loop did
  // and compare through box_sum lookups over every prefix rectangle.
  std::vector<double> table((h + 1) * (w + 1), 0.0);
  for (std::size_t y = 0; y < h; ++y) {
    double row = 0.0;
    for (std::size_t x = 0; x < w; ++x) {
      row += grid.data()[y * w + x];
      table[(y + 1) * (w + 1) + (x + 1)] = table[y * (w + 1) + (x + 1)] + row;
    }
  }
  for (std::size_t y = 1; y <= h; ++y) {
    for (std::size_t x = 1; x <= w; ++x) {
      detect::Box box;
      box.x1 = 0.0f;
      box.y1 = 0.0f;
      box.x2 = static_cast<float>(x);
      box.y2 = static_cast<float>(y);
      ASSERT_EQ(integral.box_sum(box), table[y * (w + 1) + x]);
    }
  }
}

// The RPN's precomputed anchor geometry (clipped boxes, areas, clamped
// table offsets) must be scoring-equivalent to the per-scan clip/clamp
// path: proposals with and without scratch are bitwise identical.
TEST(AnchorGeometryTest, ScratchProposalsMatchScratchless) {
  util::Rng rng(8080);
  const Tensor grid = random_tensor({1, 48, 48}, rng, 0.0f, 1.0f);
  const detect::Rpn rpn;
  detect::ScanScratch scratch;
  const auto with_scratch = rpn.propose(grid, &scratch);
  const auto without = rpn.propose(grid);
  ASSERT_EQ(with_scratch.size(), without.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_scratch[i].box.x1, without[i].box.x1);
    EXPECT_EQ(with_scratch[i].box.y1, without[i].box.y1);
    EXPECT_EQ(with_scratch[i].box.x2, without[i].box.x2);
    EXPECT_EQ(with_scratch[i].box.y2, without[i].box.y2);
    EXPECT_EQ(with_scratch[i].objectness, without[i].objectness);
  }
}

}  // namespace
}  // namespace eco::tensor
