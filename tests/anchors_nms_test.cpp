#include <gtest/gtest.h>

#include <algorithm>

#include "detect/anchors.hpp"
#include "detect/nms.hpp"
#include "util/rng.hpp"

namespace eco::detect {
namespace {

TEST(AnchorsTest, CoversGridAtStride) {
  AnchorConfig config;
  config.stride = 4;
  config.shapes = {{2.0f, 2.0f}};
  const auto anchors = generate_anchors(16, 16, config);
  EXPECT_EQ(anchors.size(), 16u);  // 4x4 centres, 1 shape
  for (const Box& a : anchors) {
    EXPECT_TRUE(a.valid());
    EXPECT_GE(a.x1, 0.0f);
    EXPECT_LE(a.x2, 16.0f);
  }
}

TEST(AnchorsTest, MultipleShapesPerCentre) {
  AnchorConfig config;
  config.stride = 8;
  config.shapes = {{2.0f, 2.0f}, {4.0f, 3.0f}, {6.0f, 4.0f}};
  const auto anchors = generate_anchors(16, 16, config);
  EXPECT_EQ(anchors.size(), 4u * 3u);
}

TEST(AnchorsTest, ClipsOversizedShapes) {
  AnchorConfig config;
  config.stride = 8;
  config.shapes = {{100.0f, 100.0f}};
  const auto anchors = generate_anchors(16, 16, config);
  for (const Box& a : anchors) {
    EXPECT_GE(a.x1, 0.0f);
    EXPECT_LE(a.x2, 16.0f);
    EXPECT_GE(a.y1, 0.0f);
    EXPECT_LE(a.y2, 16.0f);
  }
}

TEST(AnchorsTest, DefaultShapesCoverClassExtents) {
  const auto shapes = AnchorConfig::default_shapes();
  EXPECT_GE(shapes.size(), 7u);
  // Smallest anchor is pedestrian-sized, largest is bus-sized.
  float min_area = 1e9f, max_area = 0.0f;
  for (const auto& s : shapes) {
    min_area = std::min(min_area, s.width * s.height);
    max_area = std::max(max_area, s.width * s.height);
  }
  EXPECT_LT(min_area, 8.0f);
  EXPECT_GT(max_area, 60.0f);
}

Detection make_det(Box box, float score,
                   ObjectClass cls = ObjectClass::kCar) {
  Detection d;
  d.box = box;
  d.score = score;
  d.cls = cls;
  return d;
}

TEST(NmsTest, KeepsHighestScoringOfOverlappingPair) {
  std::vector<Detection> dets = {
      make_det({0, 0, 4, 4}, 0.9f),
      make_det({0.5f, 0.5f, 4.5f, 4.5f}, 0.8f),
  };
  const auto kept = nms(dets, 0.5f);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
}

TEST(NmsTest, KeepsDisjointDetections) {
  std::vector<Detection> dets = {
      make_det({0, 0, 4, 4}, 0.9f),
      make_det({10, 10, 14, 14}, 0.5f),
  };
  EXPECT_EQ(nms(dets, 0.5f).size(), 2u);
}

TEST(NmsTest, ClassAwareKeepsDifferentClasses) {
  std::vector<Detection> dets = {
      make_det({0, 0, 4, 4}, 0.9f, ObjectClass::kCar),
      make_det({0, 0, 4, 4}, 0.8f, ObjectClass::kVan),
  };
  EXPECT_EQ(nms(dets, 0.5f, /*class_aware=*/true).size(), 2u);
  EXPECT_EQ(nms(dets, 0.5f, /*class_aware=*/false).size(), 1u);
}

TEST(NmsTest, ThresholdControlsSuppression) {
  std::vector<Detection> dets = {
      make_det({0, 0, 4, 4}, 0.9f),
      make_det({1, 0, 5, 4}, 0.8f),  // IoU = 12/20 = 0.6
  };
  EXPECT_EQ(nms(dets, 0.5f).size(), 1u);   // 0.6 > 0.5 -> suppressed
  EXPECT_EQ(nms(dets, 0.7f).size(), 2u);   // 0.6 < 0.7 -> kept
}

TEST(NmsTest, OutputSortedByScore) {
  std::vector<Detection> dets = {
      make_det({0, 0, 2, 2}, 0.3f),
      make_det({10, 0, 12, 2}, 0.9f),
      make_det({20, 0, 22, 2}, 0.6f),
  };
  const auto kept = nms(dets, 0.5f);
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_GE(kept[0].score, kept[1].score);
  EXPECT_GE(kept[1].score, kept[2].score);
}

TEST(FilterTest, DropsBelowThreshold) {
  std::vector<Detection> dets = {make_det({0, 0, 1, 1}, 0.2f),
                                 make_det({0, 0, 1, 1}, 0.6f)};
  const auto kept = filter_by_score(dets, 0.5f);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.6f);
}

TEST(TopKTest, KeepsHighestK) {
  std::vector<Detection> dets = {
      make_det({0, 0, 1, 1}, 0.1f), make_det({0, 0, 1, 1}, 0.9f),
      make_det({0, 0, 1, 1}, 0.5f), make_det({0, 0, 1, 1}, 0.7f)};
  const auto kept = keep_top_k(dets, 2);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_FLOAT_EQ(kept[0].score, 0.9f);
  EXPECT_FLOAT_EQ(kept[1].score, 0.7f);
}

TEST(TopKTest, NoOpWhenFewer) {
  std::vector<Detection> dets = {make_det({0, 0, 1, 1}, 0.1f)};
  EXPECT_EQ(keep_top_k(dets, 5).size(), 1u);
}

// The vectorized class-agnostic sweep (four keepers per SSE2 step) must
// reproduce the scalar greedy algorithm exactly: same survivors, same
// order. The replay below IS that scalar algorithm — stable sort by score,
// then a plain iou() loop against already-kept boxes.
std::vector<Detection> scalar_greedy_nms(std::vector<Detection> detections,
                                         float iou_threshold) {
  std::stable_sort(detections.begin(), detections.end(),
                   [](const Detection& a, const Detection& b) {
                     return a.score > b.score;
                   });
  std::vector<Detection> kept;
  for (const Detection& d : detections) {
    bool suppressed = false;
    for (const Detection& k : kept) {
      if (iou(k.box, d.box) > iou_threshold) {
        suppressed = true;
        break;
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  return kept;
}

TEST(NmsTest, VectorSweepMatchesScalarGreedyReplay) {
  util::Rng rng(90210);
  // Sizes straddle the 4-lane step: empty, below one vector, exact
  // multiples, and tails of every residue.
  for (const std::size_t n : {0u, 1u, 3u, 4u, 5u, 7u, 8u, 33u, 100u}) {
    std::vector<Detection> dets;
    for (std::size_t i = 0; i < n; ++i) {
      const float x = rng.uniform_f(0.0f, 40.0f);
      const float y = rng.uniform_f(0.0f, 40.0f);
      dets.push_back(make_det({x, y, x + rng.uniform_f(0.5f, 8.0f),
                               y + rng.uniform_f(0.5f, 8.0f)},
                              rng.uniform_f(0.0f, 1.0f)));
    }
    // A few degenerate boxes: zero-area (inter lane masked like the
    // scalar w>0 && h>0 guard) and duplicated coordinates (ties).
    if (n >= 5) {
      dets[1].box = {3.0f, 3.0f, 3.0f, 3.0f};
      dets[4].box = dets[0].box;
      dets[4].score = dets[0].score;
    }
    for (const float thr : {0.3f, 0.5f, 0.75f}) {
      const auto expected = scalar_greedy_nms(dets, thr);
      auto actual = dets;
      nms_in_place(actual, thr, /*class_aware=*/false);
      ASSERT_EQ(actual.size(), expected.size()) << "n=" << n << " thr=" << thr;
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].box.x1, expected[i].box.x1);
        EXPECT_EQ(actual[i].box.y1, expected[i].box.y1);
        EXPECT_EQ(actual[i].box.x2, expected[i].box.x2);
        EXPECT_EQ(actual[i].box.y2, expected[i].box.y2);
        EXPECT_EQ(actual[i].score, expected[i].score);
      }
    }
  }
}

TEST(NmsTest, VectorSweepHandlesDisjointKeepersWithoutFalsePositives) {
  // Widely separated boxes produce negative iw/ih in every lane; the junk
  // products must be masked, never suppress.
  std::vector<Detection> dets;
  for (std::size_t i = 0; i < 9; ++i) {
    const float o = static_cast<float>(i) * 100.0f;
    dets.push_back(make_det({o, o, o + 2.0f, o + 2.0f},
                            1.0f - 0.05f * static_cast<float>(i)));
  }
  auto kept = dets;
  nms_in_place(kept, 0.5f, /*class_aware=*/false);
  EXPECT_EQ(kept.size(), dets.size());
}

}  // namespace
}  // namespace eco::detect
